"""End-to-end topology churn: reshards, mobility, audit, determinism.

The churn contract mirrors the chaos one (``tests/test_chaos_matrix.py``):
every generated scenario is recoverable by construction, so DAST must come
out of each serializable (``audit_dast_run(...).ok``), with replicas in
agreement and only benign churn aborts.  On failure the fuzz test prints a
delta-debugged minimal reproducer via the shared ddmin shrinker.

The canonical smoke scenario exercises the full tentpole surface in one
trial: a region join that reshards work onto a spare region, a seeded
client-migration burst, and a region leave that reshards work back — all
under open-loop load, audited, and byte-identical across reruns.
"""

import pytest

from repro.bench.auditor import audit_dast_run
from repro.bench.harness import Trial, run_trial
from repro.chaos import FaultPlan, shrink_plan
from repro.sim.par import MODE_SERIAL, resolve_mode
from repro.topo import TopologyPlan, generate_topology_plan
from repro.topo.runner import run_topo_trial
from repro.workloads.tpca import TpcaWorkload

# Small budgets: structural events finish inside the drain window (the
# same knobs the CI chaos job uses for `repro topo`).
DURATION_MS = 2500.0
DRAIN_MS = 7000.0

FUZZ_SEEDS = list(range(4))


def _smoke_plan() -> TopologyPlan:
    """Join a spare region (reshard out), migrate clients, leave (reshard
    back).  Times sit inside the arrival window so churn lands mid-load."""
    return (
        TopologyPlan(name="churn-smoke")
        .add(900.0, "region_join", region="r3", shards=["s0"])
        .add(1500.0, "migrate_clients", src="r1", dst="r2", fraction=0.1)
        .add(2400.0, "region_leave", region="r3")
    )


def _run_smoke():
    return run_topo_trial(
        _smoke_plan(), workload="tpca", num_regions=3, shards_per_region=1,
        spare_regions=1, users_per_region=60, arrival_rate_tps=40.0,
        duration_ms=3500.0, drain_ms=9000.0, seed=3, crt_ratio=0.1)


_SMOKE = None


def smoke_report():
    global _SMOKE
    if _SMOKE is None:
        _SMOKE = _run_smoke()
    return _SMOKE


class TestChurnSmoke:
    def test_audit_and_verdict(self):
        report = smoke_report()
        assert report.ok, report.to_text()
        assert report.audit is not None and report.audit.ok
        assert report.replica_mismatches == []
        assert report.conflict_aborts == []
        assert report.events_applied == 3
        assert report.committed > 0

    def test_churn_counters(self):
        c = smoke_report().counters
        # join + leave = two elastic reshards, each counted once.
        assert c["reshards"] >= 2, c
        assert c["region_joins"] == 1, c
        assert c["region_leaves"] == 1, c
        # 10% of r1's open-loop users re-homed; their post-migration
        # traffic routes through r2 coordinators as handoff CRTs.
        assert c["migrated_users"] > 0, c
        assert c["handoff_txns"] > 0, c


class TestDeterminism:
    def test_identical_reruns_byte_identical_report(self):
        """Same plan + seed twice: the rendered report (timeline, commit and
        abort counts, churn counters, audit verdict) must match exactly."""
        plan = generate_topology_plan(3, num_regions=3, shards_per_region=1,
                                      spare_regions=1)
        runs = [
            run_topo_trial(plan, duration_ms=DURATION_MS, drain_ms=DRAIN_MS,
                           seed=3)
            for _ in range(2)
        ]
        assert runs[0].ok, runs[0].to_text()
        assert runs[0].to_text() == runs[1].to_text()
        assert runs[0].counters == runs[1].counters


class TestSerialFallback:
    """The PDES gate: dynamic reconfiguration names its serial fallback."""

    def _trial(self, **kw) -> Trial:
        return Trial("dast", lambda topo: TpcaWorkload(topo),
                     num_regions=3, shards_per_region=1, replication=1,
                     clients_per_region=2, duration_ms=500.0, **kw)

    def test_topology_plan_forces_serial_with_named_reason(self):
        trial = self._trial(topology_plan=_smoke_plan(), spare_regions=1)
        mode, reason = resolve_mode(trial, requested=3)
        assert mode == MODE_SERIAL
        assert reason == ("topology plan: dynamic reconfiguration "
                          "requires the serial kernel")

    def test_static_heterogeneity_stays_partition_eligible(self):
        # rtt_profile / service_multipliers / an *empty* plan are static
        # config, not mid-trial churn: the partitioned kernel stays on.
        trial = self._trial(topology_plan=TopologyPlan(),
                            rtt_profile="aws-like",
                            service_multipliers="edge-tiers")
        mode, reason = resolve_mode(trial, requested=3)
        assert mode != MODE_SERIAL
        assert reason is None


class TestTopoFuzzMatrix:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_generated_churn_stays_serializable(self, seed):
        plan = generate_topology_plan(seed, num_regions=3,
                                      shards_per_region=1, spare_regions=1)
        report = run_topo_trial(plan, duration_ms=DURATION_MS,
                                drain_ms=DRAIN_MS, seed=seed)
        if not report.ok:
            shrunk = shrink_plan(
                plan,
                lambda p: not run_topo_trial(
                    p, duration_ms=DURATION_MS, drain_ms=DRAIN_MS,
                    seed=seed).ok,
                max_runs=32,
            )
            pytest.fail(
                f"topo seed={seed} failed the audit.\n"
                f"minimal reproducer ({shrunk.runs} shrink runs):\n"
                f"{shrunk.plan.timeline()}\n"
                f"json: {shrunk.plan.to_json()}\n\n"
                f"full report:\n{report.to_text()}"
            )
        assert report.audit is not None and report.audit.ok
        assert report.conflict_aborts == []
        assert report.events_applied == len(plan.events)
        assert report.committed > 0


class TestFaultComposition:
    def test_topology_plan_composes_with_fault_plan(self):
        """Churn and network faults on the same trial: a cross-region RTT
        spike lands between a reshard and a migration burst, and the run
        must still drain to a serializable state."""
        topo_plan = (
            TopologyPlan(name="churn+faults")
            .add(800.0, "move_shard", shard="s0", dst="r3")
            .add(1400.0, "migrate_clients", src="r0", dst="r1", fraction=0.1)
        )
        fault_plan = (
            FaultPlan(name="rtt-spike")
            .add(1000.0, "set_rtt", rtt=80.0)
            .add(1800.0, "set_rtt", rtt=40.0)
        )
        trial = Trial(
            "dast", lambda topo: TpcaWorkload(topo, crt_ratio=0.1),
            num_regions=3, shards_per_region=1, replication=1,
            clients_per_region=2, duration_ms=DURATION_MS, seed=5,
            topology_plan=topo_plan, spare_regions=1, fault_plan=fault_plan,
            open_loop={"users_per_region": 60, "txn_per_user_s": 40.0 / 60.0,
                       "keep_records": True},
        )
        result = run_trial(trial)
        result.drain(extra_ms=DRAIN_MS)
        assert result.topo is not None
        assert len(result.topo.applied) == len(topo_plan.events)
        audit = audit_dast_run(result.system)
        assert audit.ok, audit
        counters = result.system.topo_counters()
        assert counters.get("topo_reshards", 0) >= 1, counters
        assert counters.get("topo_migrated_users", 0) > 0, counters


class TestMigrationSpans:
    def test_handoff_spans_lead_with_migration_phase(self):
        """Open-loop spans for re-homed users anchor at the original arrival
        and replace the leading ``queue`` phase with ``migration``."""
        from repro.obs.spans import assemble_spans

        plan = TopologyPlan(name="mobility-only").add(
            1000.0, "migrate_clients", src="r0", dst="r1", fraction=0.2)
        trial = Trial(
            "dast", lambda topo: TpcaWorkload(topo, crt_ratio=0.1),
            num_regions=3, shards_per_region=1, replication=1,
            clients_per_region=2, duration_ms=DURATION_MS, seed=7,
            obs=True, topology_plan=plan,
            open_loop={"users_per_region": 40, "txn_per_user_s": 0.5,
                       "keep_records": True},
        )
        result = run_trial(trial)
        result.drain(extra_ms=DRAIN_MS)
        assert result.system.topo_counters().get("topo_migrated_users", 0) > 0
        tracer = result.obs.tracer if hasattr(result.obs, "tracer") else result.obs
        spans = assemble_spans(tracer)
        migration = [s for s in spans if "migration" in s.phases]
        assert migration, "no spans carried the migration phase"
        for span in migration:
            assert "queue" not in span.phases
            assert span.phases["migration"] >= 0.0
            # Phase durations telescope to the client-observed total.
            assert sum(span.phases.values()) == pytest.approx(span.total)


class TestFleetSpecTopology:
    def test_topology_round_trips_through_spec(self):
        from repro.fleet.spec import TrialSpec

        spec = TrialSpec(
            system="dast", workload="tpca", num_regions=3,
            shards_per_region=1, replication=1, clients_per_region=2,
            duration_ms=1000.0, seed=3, spare_regions=1,
            topology=_smoke_plan().to_dict(),
            label="topo-spec/dast",
        )
        spec.validate()
        trial = spec.to_trial()
        assert isinstance(trial.topology_plan, TopologyPlan)
        assert len(trial.topology_plan) == 3
        assert trial.spare_regions == 1

    def test_topology_fields_are_fingerprint_bearing(self):
        from dataclasses import replace

        from repro.fleet.spec import TrialSpec

        base = TrialSpec(system="dast", workload="tpca", num_regions=3,
                         shards_per_region=1, replication=1,
                         clients_per_region=2, duration_ms=1000.0, seed=3)
        prints = {
            base.fingerprint(),
            replace(base, topology=_smoke_plan().to_dict(),
                    spare_regions=1).fingerprint(),
            replace(base, rtt_profile="aws-like").fingerprint(),
            replace(base, service_multipliers="edge-tiers").fingerprint(),
        }
        assert len(prints) == 4  # each knob lands in the cache key


class TestCanarySeedBand:
    def test_seed_band_accepts_range_and_flags_outliers(self):
        from repro.obs.canary import _band_violations, _seed_band

        rows = [{"throughput_tps": 100.0}, {"throughput_tps": 110.0},
                {"throughput_tps": 104.0}]
        band = _seed_band(1, 3, rows)
        assert band["seeds"] == [1, 2, 3]
        dist = band["metrics"]["throughput_tps"]
        assert (dist["min"], dist["max"]) == (100.0, 110.0)

        golden = {"row": rows[0], "seed_band": band}
        # Inside the observed seed range: no violation even though it is
        # far from the base-seed point value.
        inside = {"row": {"throughput_tps": 109.0}}
        assert _band_violations(golden, inside, tolerance=None) == []
        # Outside range + slack (10% of mean): flagged with the seed range.
        outlier = {"row": {"throughput_tps": 130.0}}
        violations = _band_violations(golden, outlier, tolerance=None)
        assert [v["metric"] for v in violations] == ["throughput_tps"]
        assert violations[0]["seed_range"] == [100.0, 110.0]
