"""Tests for periodic probes, the obs bundle, and the exporters."""

import json

import pytest

from repro.obs import (ObsBundle, attach_obs, export_csv, export_jsonl,
                       render_report, sparkline)
from repro.obs.probes import ProbeRunner, standard_probes
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.txn.model import Transaction
from tests.conftest import kv_set, make_dast, submit_and_run


def run_observed_dast(regions=2, txns=3):
    system = make_dast(regions=regions, spr=1)
    bundle = attach_obs(system, probe_interval=25.0)
    system.start()
    for i in range(txns):
        crt = Transaction(f"crt{i}",
                          [kv_set(0, i, 1), kv_set(1, i, 2, piece_index=1)])
        submit_and_run(system, crt)
    bundle.stop()
    return system, bundle


class TestProbeRunner:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ProbeRunner(Simulator(), MetricsRegistry(), interval=0)

    def test_periodic_sampling_in_virtual_time(self):
        sim = Simulator()
        reg = MetricsRegistry(now_fn=lambda: sim.now)
        runner = ProbeRunner(sim, reg, interval=10.0)
        depth = [0]
        runner.add("depth", lambda: depth[0])
        runner.start()
        depth[0] = 7
        sim.run(until=35.0)
        series = reg.timeseries("depth")
        assert series.times() == [10.0, 20.0, 30.0]
        assert series.values() == [7.0, 7.0, 7.0]

    def test_stop_halts_sampling(self):
        sim = Simulator()
        reg = MetricsRegistry(now_fn=lambda: sim.now)
        runner = ProbeRunner(sim, reg, interval=10.0)
        runner.add("x", lambda: 1)
        runner.start()
        sim.run(until=25.0)
        runner.stop()
        sim.run(until=100.0)
        assert len(reg.timeseries("x")) == 2

    def test_probe_exception_does_not_kill_others(self):
        sim = Simulator()
        reg = MetricsRegistry(now_fn=lambda: sim.now)
        runner = ProbeRunner(sim, reg, interval=10.0)
        runner.add("bad", lambda: 1 / 0)
        runner.add("good", lambda: 1)
        runner.start()
        sim.run(until=15.0)
        assert len(reg.timeseries("good")) == 1
        assert len(reg.timeseries("bad")) == 0

    def test_none_values_skipped(self):
        sim = Simulator()
        reg = MetricsRegistry(now_fn=lambda: sim.now)
        runner = ProbeRunner(sim, reg, interval=10.0)
        runner.add("maybe", lambda: None)
        runner.start()
        sim.run(until=15.0)
        assert len(reg.timeseries("maybe")) == 0


class TestStandardProbes:
    def test_dast_probe_set(self):
        system = make_dast(regions=2, spr=1)
        names = {name for name, _fn in standard_probes(system)}
        assert {"stretch_count", "waitq_depth", "readyq_depth", "pct_lag_ms",
                "pending_crts", "net_inflight", "net_sent"} <= names
        assert any(n.startswith("executed.") for n in names)

    def test_observed_run_collects_series(self):
        _system, bundle = run_observed_dast()
        series = bundle.registry.series
        assert len(bundle.registry.timeseries("stretch_count")) > 0
        assert len(bundle.registry.timeseries("waitq_depth")) > 0
        # Execution happened, so the per-node counters grew monotonically.
        executed = [s for n, s in series.items() if n.startswith("executed.")]
        assert executed
        for s in executed:
            assert s.values() == sorted(s.values())


class TestAttachObs:
    def test_bundle_wiring(self):
        system, bundle = run_observed_dast()
        assert isinstance(bundle, ObsBundle)
        assert system.obs is bundle
        assert system.tracer is bundle.tracer
        assert system.registry is bundle.registry
        assert bundle.spans()  # the CRTs produced complete spans

    def test_stats_mirrored_into_registry(self):
        _system, bundle = run_observed_dast()
        executed = [name for name in bundle.registry.counters
                    if name.endswith(".executed")]
        assert executed
        for name in executed:
            assert bundle.registry.counter(name).value > 0

    def test_unobserved_system_pays_nothing(self):
        system = make_dast(regions=1, spr=1)
        system.start()
        submit_and_run(system, Transaction("w", [kv_set(0, 0, 1)]))
        assert system.tracer is None
        assert system.registry is None
        assert system.probes is None
        assert not system.nodes["r0.n0"].stats.bound


class TestExporters:
    def test_jsonl_roundtrip(self, tmp_path):
        _system, bundle = run_observed_dast()
        path = tmp_path / "obs.jsonl"
        n = export_jsonl(bundle, str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == n
        types = {r["type"] for r in records}
        assert {"meta", "counter", "span", "probe"} <= types
        spans = [r for r in records if r["type"] == "span"]
        for rec in spans:
            assert sum(rec["phases"].values()) == pytest.approx(rec["total_ms"])
        probe_names = {r["name"] for r in records if r["type"] == "probe"}
        assert "stretch_count" in probe_names
        assert records[0]["type"] == "meta"
        assert records[0]["system"] == "dast"

    def test_csv_export(self, tmp_path):
        _system, bundle = run_observed_dast()
        paths = export_csv(bundle, str(tmp_path))
        assert set(paths) == {"spans", "probes", "counters"}
        spans_lines = (tmp_path / "spans.csv").read_text().splitlines()
        assert spans_lines[0].startswith("txn,is_crt,start_ms")
        assert len(spans_lines) == 1 + len(bundle.spans())
        probes_lines = (tmp_path / "probes.csv").read_text().splitlines()
        assert probes_lines[0] == "series,t_ms,value"
        assert len(probes_lines) > 1

    def test_render_report_contents(self):
        _system, bundle = run_observed_dast()
        report = render_report(bundle)
        assert "CRT phase breakdown" in report
        assert "== probes ==" in report
        assert "stretch_count" in report
        assert "WARNING" not in report  # nothing dropped

    def test_render_report_warns_on_truncation(self):
        system = make_dast(regions=2, spr=1)
        bundle = attach_obs(system, capacity=10)
        system.start()
        crt = Transaction("crt", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        submit_and_run(system, crt)
        bundle.stop()
        assert bundle.tracer.dropped > 0
        assert "WARNING" in render_report(bundle)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_ramp_hits_extremes(self):
        line = sparkline(list(range(8)))
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40
