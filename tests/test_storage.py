"""Tests for tables, shards, the catalog, and the lock manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ConfigError,
    DuplicateKeyError,
    MissingRowError,
    ProtocolError,
    StorageError,
    UnknownTableError,
)
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.locks import LockManager, LockMode
from repro.storage.shard import Shard
from repro.storage.table import Table, TableSchema


def people_schema(**kwargs):
    return TableSchema(
        "people", ["city", "pid", "name", "age"], ["city", "pid"],
        indexes={"by_name": ["city", "name"]}, **kwargs,
    )


@pytest.fixture
def table():
    t = Table(people_schema())
    t.insert({"city": "hk", "pid": 1, "name": "ann", "age": 30})
    t.insert({"city": "hk", "pid": 2, "name": "bob", "age": 40})
    t.insert({"city": "sz", "pid": 1, "name": "ann", "age": 50})
    return t


class TestSchema:
    def test_pk_must_be_subset_of_columns(self):
        with pytest.raises(StorageError):
            TableSchema("t", ["a"], ["a", "missing"])

    def test_index_columns_validated(self):
        with pytest.raises(StorageError):
            TableSchema("t", ["a"], ["a"], indexes={"i": ["nope"]})

    def test_empty_columns_rejected(self):
        with pytest.raises(StorageError):
            TableSchema("t", [], [])


class TestTable:
    def test_get_returns_copy(self, table):
        row = table.get(("hk", 1))
        row["age"] = 999
        assert table.get(("hk", 1))["age"] == 30

    def test_duplicate_insert_rejected(self, table):
        with pytest.raises(DuplicateKeyError):
            table.insert({"city": "hk", "pid": 1, "name": "x", "age": 0})

    def test_missing_get_raises_try_get_none(self, table):
        with pytest.raises(MissingRowError):
            table.get(("hk", 99))
        assert table.try_get(("hk", 99)) is None

    def test_unknown_column_rejected(self, table):
        with pytest.raises(StorageError):
            table.insert({"city": "x", "pid": 9, "nope": 1})
        with pytest.raises(StorageError):
            table.update(("hk", 1), {"nope": 1})

    def test_primary_key_update_rejected(self, table):
        with pytest.raises(StorageError):
            table.update(("hk", 1), {"pid": 7})

    def test_update_changes_row_and_index(self, table):
        table.update(("hk", 1), {"name": "zed"})
        assert table.get(("hk", 1))["name"] == "zed"
        assert table.lookup("by_name", ("hk", "ann")) == []
        assert table.lookup("by_name", ("hk", "zed")) == [("hk", 1)]

    def test_delete_removes_row_and_index(self, table):
        table.delete(("hk", 1))
        assert table.try_get(("hk", 1)) is None
        assert table.lookup("by_name", ("hk", "ann")) == []
        with pytest.raises(MissingRowError):
            table.delete(("hk", 1))

    def test_lookup_sorted_and_scoped(self, table):
        table.insert({"city": "hk", "pid": 5, "name": "ann", "age": 20})
        assert table.lookup("by_name", ("hk", "ann")) == [("hk", 1), ("hk", 5)]
        assert table.lookup("by_name", ("sz", "ann")) == [("sz", 1)]

    def test_lookup_unknown_index(self, table):
        with pytest.raises(StorageError):
            table.lookup("ghost", ("hk",))

    def test_scan_is_sorted(self, table):
        keys = [k for k, _row in table.scan()]
        assert keys == sorted(keys)

    def test_scan_prefix(self, table):
        assert table.scan_prefix(("hk",)) == [("hk", 1), ("hk", 2)]
        assert table.scan_prefix(("sz",)) == [("sz", 1)]
        assert table.scan_prefix(("nyc",)) == []

    def test_digest_changes_with_content(self, table):
        before = table.digest()
        table.update(("hk", 1), {"age": 31})
        assert table.digest() != before

    def test_snapshot_restore_roundtrip(self, table):
        snapshot = table.snapshot()
        digest = table.digest()
        table.update(("hk", 1), {"age": 99})
        table.delete(("sz", 1))
        table.restore(snapshot)
        assert table.digest() == digest
        assert table.lookup("by_name", ("sz", "ann")) == [("sz", 1)]

    def test_len_and_contains(self, table):
        assert len(table) == 3
        assert ("hk", 1) in table
        assert ("hk", 9) not in table

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_digest_is_content_not_history(self, ops):
        """Two tables reaching the same rows by different op orders agree."""
        schema = TableSchema("t", ["k", "v"], ["k"])
        t1, t2 = Table(schema), Table(schema)
        final = {}
        for k, v in ops:
            final[k] = v
        for t, items in ((t1, list(final.items())), (t2, list(reversed(list(final.items()))))):
            for k, v in items:
                t.insert({"k": k, "v": v})
        assert t1.digest() == t2.digest()


class TestShard:
    def test_unknown_table(self):
        shard = Shard("s0", [people_schema()])
        with pytest.raises(UnknownTableError):
            shard.get("ghost", (1,))

    def test_ops_counter(self):
        shard = Shard("s0", [people_schema()])
        shard.insert("people", {"city": "hk", "pid": 1, "name": "a", "age": 1})
        shard.get("people", ("hk", 1))
        assert shard.ops_applied == 2

    def test_digest_covers_all_tables(self):
        s1 = Shard("s0", [people_schema()])
        s2 = Shard("s0", [people_schema()])
        assert s1.digest() == s2.digest()
        s1.insert("people", {"city": "hk", "pid": 1, "name": "a", "age": 1})
        assert s1.digest() != s2.digest()

    def test_snapshot_restore(self):
        shard = Shard("s0", [people_schema()])
        shard.insert("people", {"city": "hk", "pid": 1, "name": "a", "age": 1})
        snap = shard.snapshot()
        other = Shard("s0", [people_schema()])
        other.restore(snap)
        assert other.digest() == shard.digest()


class TestCatalog:
    def make(self):
        catalog = Catalog(lambda table, key: f"s{key[0] % 2}")
        catalog.add_shard("s0", "r0", ["r0.n0", "r0.n1", "r0.n2"])
        catalog.add_shard("s1", "r1", ["r1.n0", "r1.n1", "r1.n2"])
        return catalog

    def test_shard_of_routes_through_partition_fn(self):
        catalog = self.make()
        assert catalog.shard_of("t", (4,)) == "s0"
        assert catalog.shard_of("t", (5,)) == "s1"

    def test_quorum_size(self):
        catalog = self.make()
        assert catalog.shard("s0").quorum_size == 2

    def test_duplicate_shard_rejected(self):
        catalog = self.make()
        with pytest.raises(ConfigError):
            catalog.add_shard("s0", "r9", ["x"])

    def test_unknown_shard(self):
        catalog = self.make()
        with pytest.raises(ConfigError):
            catalog.shard("ghost")

    def test_region_queries(self):
        catalog = self.make()
        assert catalog.region_of_shard("s1") == "r1"
        assert catalog.shards_in_region("r0") == ["s0"]
        assert catalog.shards_on_node("r1.n2") == ["s1"]
        assert catalog.all_regions() == ["r0", "r1"]

    def test_remove_and_add_replica(self):
        catalog = self.make()
        catalog.remove_replica("s0", "r0.n1")
        assert catalog.replicas_of("s0") == ("r0.n0", "r0.n2")
        assert catalog.shard("s0").quorum_size == 2
        catalog.add_replica("s0", "r0.n9")
        assert "r0.n9" in catalog.replicas_of("s0")
        # Idempotent on repeats.
        catalog.add_replica("s0", "r0.n9")
        assert catalog.replicas_of("s0").count("r0.n9") == 1


class TestLockManager:
    def grants(self, event):
        return event.triggered

    def test_exclusive_blocks_exclusive(self):
        sim = Simulator()
        lm = LockManager(sim)
        e1 = lm.request("t1", {"k": LockMode.EXCLUSIVE})
        e2 = lm.request("t2", {"k": LockMode.EXCLUSIVE})
        sim.run()
        assert e1.triggered and not e2.triggered
        lm.release("t1")
        sim.run()
        assert e2.triggered

    def test_shared_locks_coexist(self):
        sim = Simulator()
        lm = LockManager(sim)
        e1 = lm.request("t1", {"k": LockMode.SHARED})
        e2 = lm.request("t2", {"k": LockMode.SHARED})
        sim.run()
        assert e1.triggered and e2.triggered

    def test_readers_queue_behind_writer_fifo(self):
        sim = Simulator()
        lm = LockManager(sim)
        lm.request("w", {"k": LockMode.EXCLUSIVE})
        r = lm.request("r", {"k": LockMode.SHARED})
        w2 = lm.request("w2", {"k": LockMode.EXCLUSIVE})
        sim.run()
        assert not r.triggered and not w2.triggered
        lm.release("w")
        sim.run()
        assert r.triggered and not w2.triggered  # FIFO: r first
        lm.release("r")
        sim.run()
        assert w2.triggered

    def test_multi_key_all_or_wait(self):
        sim = Simulator()
        lm = LockManager(sim)
        lm.request("t1", {"a": LockMode.EXCLUSIVE})
        e2 = lm.request("t2", {"a": LockMode.EXCLUSIVE, "b": LockMode.EXCLUSIVE})
        sim.run()
        assert not e2.triggered
        assert lm.holders_of("b") == {"t2"}  # b granted, a pending
        lm.release("t1")
        sim.run()
        assert e2.triggered

    def test_release_before_grant_cancels_waiter(self):
        sim = Simulator()
        lm = LockManager(sim)
        lm.request("t1", {"k": LockMode.EXCLUSIVE})
        e2 = lm.request("t2", {"k": LockMode.EXCLUSIVE})
        lm.release("t2")  # abort while queued
        lm.release("t1")
        sim.run()
        assert not e2.triggered
        assert lm.holders_of("k") == set()

    def test_double_request_rejected(self):
        sim = Simulator()
        lm = LockManager(sim)
        lm.request("t1", {"k": LockMode.EXCLUSIVE})
        with pytest.raises(ProtocolError):
            lm.request("t1", {"j": LockMode.EXCLUSIVE})

    def test_waiting_count(self):
        sim = Simulator()
        lm = LockManager(sim)
        lm.request("t1", {"k": LockMode.EXCLUSIVE})
        lm.request("t2", {"k": LockMode.EXCLUSIVE})
        lm.request("t3", {"k": LockMode.EXCLUSIVE})
        assert lm.waiting_count() == 2

    def test_log_order_schedule_is_deterministic(self):
        """Two replicas issuing identical request sequences grant identically."""
        def run_schedule():
            sim = Simulator()
            lm = LockManager(sim)
            order = []
            reqs = [
                ("a", {"x": LockMode.EXCLUSIVE}),
                ("b", {"x": LockMode.EXCLUSIVE, "y": LockMode.EXCLUSIVE}),
                ("c", {"y": LockMode.SHARED}),
                ("d", {"x": LockMode.SHARED}),
            ]
            for txn_id, wants in reqs:
                lm.request(txn_id, wants).add_callback(
                    lambda e, t=txn_id: (order.append(t), lm.release(t))
                )
            sim.run()
            return order

        # b releases x before y (sorted order), so d wakes before c.
        assert run_schedule() == run_schedule() == ["a", "b", "d", "c"]


class TestLockManagerProperties:
    """Property-based safety/liveness of the FIFO lock manager."""

    @given(st.lists(st.tuples(st.integers(0, 9), st.sampled_from("abc"),
                              st.booleans()), min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_never_two_exclusive_holders_and_all_eventually_granted(self, script):
        from repro.sim.kernel import Simulator
        from repro.storage.locks import LockManager, LockMode

        sim = Simulator()
        lm = LockManager(sim)
        granted = []
        requested = []
        active = set()
        for i, (txn_num, key, shared) in enumerate(script):
            txn_id = f"t{i}"  # unique owners
            mode = LockMode.SHARED if shared else LockMode.EXCLUSIVE
            requested.append(txn_id)
            active.add(txn_id)

            def on_grant(ev, t=txn_id, k=key, m=mode):
                # Safety: an exclusive grant implies sole ownership.
                holders = lm.holders_of(k)
                assert t in holders
                if m == LockMode.EXCLUSIVE:
                    assert holders == {t}
                granted.append(t)
                # Hold briefly, then release, letting the queue drain.
                sim.schedule(1.0, lm.release, t)

            lm.request(txn_id, {key: mode}).add_callback(on_grant)
        sim.run()
        # Liveness: every requester was eventually granted exactly once.
        assert sorted(granted) == sorted(requested)
