"""Cross-kernel determinism goldens and hot-path hygiene guards.

The two golden digests below were captured from the pre-optimization
(heap-only, no fast-path) kernel.  Any change that perturbs virtual-time
results — event ordering, RNG draw order, byte accounting, batching — moves
a digest and fails here.  Wall-clock optimizations must keep both
byte-identical.

The digests intentionally exclude the spec fingerprint: it embeds
``code_version()`` (a digest over all source files) and therefore moves on
every PR by design.
"""

import hashlib
import re
from pathlib import Path

import pytest

from repro.fleet.spec import TrialSpec, canonical_json

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _virtual_digest(outcome) -> str:
    """Digest of everything the simulation computed (no provenance, no
    fingerprint — see module docstring)."""
    blob = canonical_json({
        "row": outcome.row,
        "extras": outcome.extras,
        "committed": outcome.committed,
        "aborted": outcome.aborted,
    }).encode()
    return hashlib.sha256(blob).hexdigest()


class TestGoldens:
    def test_dast_trial_golden(self):
        from repro.fleet.executor import run_spec

        spec = TrialSpec(
            system="dast", workload="tpcc",
            num_regions=2, shards_per_region=2, clients_per_region=4,
            duration_ms=1500.0, warmup_ms=300.0, cooldown_ms=200.0, seed=1,
            label="golden/dast",
        )
        outcome = run_spec(spec)
        assert outcome.ok, outcome
        # Re-pinned when txn ids became fixed-width ("t0000001"): id string
        # length feeds the wire-size model, so the byte accounting moved —
        # once, deliberately, to make wire bytes independent of id
        # allocation order (a parallel-kernel prerequisite).
        assert _virtual_digest(outcome) == (
            "c821f55109eeaa0a5a18e8c71e6d314cbe27679efda34f1ab1dd244834298ae4"
        )

    def test_chaos_trial_golden(self):
        from repro.chaos.generator import generate_plan
        from repro.chaos.runner import run_chaos_trial

        plan = generate_plan(3, num_regions=2, shards_per_region=2)
        report = run_chaos_trial(
            plan, seed=3, system="dast", workload="tpca",
            num_regions=2, shards_per_region=2, clients_per_region=3,
            duration_ms=2000.0, drain_ms=3000.0,
        )
        assert report.ok
        digest = hashlib.sha256(report.to_text().encode()).hexdigest()
        assert digest == (
            "d81dc19f1f385687b2e2cb7340c56f3ffb882c2b503513af00c18db9874c1aeb"
        )


class TestHotPathHygiene:
    """Mirror of the ruff TID251 guard: the deterministic core must never
    read a wall clock or the process-global random module."""

    BANNED = re.compile(
        r"(?<![\w.])(?:time\.time|time\.monotonic|time\.perf_counter)\s*\("
        r"|(?<![\w.])random\.(?!Random\b)\w+\s*\("
        r"|from\s+time\s+import\s+.*\b(?:time|monotonic|perf_counter)\b"
        r"|from\s+random\s+import\s+(?!Random\b)"
    )

    @pytest.mark.parametrize("package", ["sim", "core"])
    def test_no_wall_clock_or_global_random(self, package):
        offenders = []
        for path in sorted((SRC / package).rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = line.split("#", 1)[0]
                if self.BANNED.search(code):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "wall-clock / global-random use in deterministic code:\n"
            + "\n".join(offenders)
        )

    # Concurrency primitives are confined to the subsystems built for
    # them: repro.sim.par (the region-partitioned kernel) and the two
    # process-pool fan-out harnesses (repro.fleet, repro.chaos.parallel).
    # Anywhere else, a thread or a process is an undeclared determinism
    # hazard.  Mirrors the ruff TID251 ban.
    BANNED_CONCURRENCY = re.compile(
        r"^\s*(?:import\s+(?:threading|multiprocessing)\b"
        r"|from\s+(?:threading|multiprocessing)[.\s])"
    )
    CONCURRENCY_ALLOWED = ("sim/par/", "fleet/", "chaos/parallel.py")

    def test_threading_confined_to_par_and_fleet(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            if rel.startswith(self.CONCURRENCY_ALLOWED):
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = line.split("#", 1)[0]
                if self.BANNED_CONCURRENCY.search(code):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "threading/multiprocessing outside repro.sim.par / repro.fleet:\n"
            + "\n".join(offenders)
        )

    # Raw process forking is even more confined than threading: only the
    # process backend's worker module may call it.  Everything else that
    # needs process fan-out goes through multiprocessing's spawn context
    # (repro.fleet, repro.chaos.parallel), which never inherits mutable
    # simulation state.
    BANNED_FORK = re.compile(r"\bos\.(?:fork|forkpty)\s*\(")
    FORK_ALLOWED = ("sim/par/proc.py",)

    def test_os_fork_confined_to_process_backend(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            if rel in self.FORK_ALLOWED:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = line.split("#", 1)[0]
                if self.BANNED_FORK.search(code):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "os.fork outside repro.sim.par.proc:\n" + "\n".join(offenders)
        )
