"""Protocol-mechanism tests: stretchable clock behaviour, waitQ floors,
anticipation, obligations, and R1 under concurrent CRT load."""

import pytest

from repro.clock.hlc import Timestamp
from repro.config import TimingConfig
from repro.core.records import TxnStatus
from repro.txn.model import Transaction
from tests.conftest import (
    kv_apply_input,
    kv_read_forward,
    kv_set,
    make_dast,
    submit_and_run,
)


def start_crt(system, value=5, home_region_index=0):
    """Launch (but do not wait for) a CRT from region 0 touching s0+s1."""
    txn = Transaction("crt", [
        kv_set(0, 0, value),
        kv_set(1, 0, value, piece_index=1),
    ])
    results = []
    ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
    ev.add_callback(lambda e: results.append(e.value))
    return txn, results


class TestAnticipationAndWaitQ:
    def test_prepared_crt_floors_participants(self, dast2):
        txn, _results = start_crt(dast2)
        # Give the prep-remote -> manager -> prep-crt chain time to land.
        dast2.run(until=dast2.sim.now + 70.0)
        node = dast2.nodes["r1.n0"]
        assert txn.txn_id in node.wait_q
        rec = node.records[txn.txn_id]
        assert rec.status == TxnStatus.PREPARED
        # The anticipated timestamp is in the future (about one RTT ahead).
        assert rec.anticipated_ts.time > node.dclock.physical() + 20.0

    def test_non_participants_learn_floor_via_announce(self):
        system = make_dast(regions=2, spr=2)
        system.start()
        # Touch s0 (region 0) and s2 (region 1): a genuine CRT.  s1's
        # replicas in region 0 do not participate but must hold the floor.
        txn = Transaction("crt", [kv_set(0, 0, 5), kv_set(2, 0, 5, piece_index=1)])
        system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        system.run(until=system.sim.now + 70.0)
        non_participant = system.nodes["r0.n3"]
        assert non_participant.topology.shard_of_node("r0.n3") == "s1"
        assert txn.txn_id in non_participant.wait_q

    def test_floor_removed_after_execution(self, dast2):
        txn, results = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 4000.0)
        assert results and results[0].committed
        dast2.run(until=dast2.sim.now + 500.0)
        for node in dast2.nodes.values():
            assert txn.txn_id not in node.wait_q

    def test_manager_floor_while_pending(self, dast2):
        txn, _ = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 70.0)
        mgr = dast2.managers["r1"]
        assert txn.txn_id in mgr.pending
        floor = mgr._pending_floor()
        assert floor is not None and floor.time > mgr.dclock.physical()
        dast2.run(until=dast2.sim.now + 4000.0)
        assert txn.txn_id not in mgr.pending

    def test_rtt_estimator_learns(self, dast2):
        for _ in range(3):
            txn, _ = start_crt(dast2)
            dast2.run(until=dast2.sim.now + 1500.0)
        est = dast2.managers["r1"].rtt.estimate("r0")
        assert est == pytest.approx(100.0, rel=0.3)

    def test_commit_ts_at_least_all_anticipations(self, dast2):
        txn, results = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 4000.0)
        rec = dast2.nodes["r1.n0"].records[txn.txn_id]
        assert rec.ts >= rec.anticipated_ts


class TestStretching:
    def test_irts_slot_below_pending_crt(self, dast2):
        """The Figure 1b behaviour: IRT timestamps stay below the floor."""
        txn, _ = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 70.0)
        anticipated = dast2.nodes["r1.n0"].records[txn.txn_id].anticipated_ts
        # Submit IRTs in region 1 while the CRT is pending there.
        irt = Transaction("irt", [kv_set(1, 3, 9)])
        result = submit_and_run(dast2, irt, client="r1.c0", node="r1.n0")
        assert result.committed
        rec_ts = dict((tid, ts) for ts, tid in dast2.nodes["r1.n0"].executed_log)[irt.txn_id]
        assert rec_ts < anticipated

    def test_irt_not_blocked_by_pending_crt(self, dast2):
        """R1: IRT latency stays intra-region while a CRT is in flight."""
        txn, _ = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 70.0)
        t0 = dast2.sim.now
        irt = Transaction("irt", [kv_set(1, 4, 1)])
        submit_and_run(dast2, irt, client="r1.c0", node="r1.n0")
        exec_time = dict(
            (tid, ts) for ts, tid in dast2.nodes["r1.n0"].executed_log
        )
        rec = dast2.nodes["r1.n0"].records[irt.txn_id]
        assert rec.t_executed - t0 < 40.0  # far below the 100ms cross RTT

    def test_stretch_counter_increases_when_anticipation_is_tight(self):
        # With accurate anticipation the floor lifts right as physical time
        # reaches it, so stretching is rare — the paper's design goal.  With
        # anticipation disabled the floor sits at "now" for the whole CRT
        # coordination window, forcing the clocks to stretch.
        system = make_dast(regions=2, spr=1, variant={"anticipation": False})
        system.start()
        base = system.total_stretches()
        txn = Transaction("crt", [kv_set(0, 0, 5), kv_set(1, 0, 5, piece_index=1)])
        results = []
        ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        ev.add_callback(lambda e: results.append(e.value))
        system.run(until=system.sim.now + 4000.0)
        assert results and results[0].committed
        assert system.total_stretches() > base

    def test_clock_resumes_after_crt(self, dast2):
        txn, results = start_crt(dast2)
        dast2.run(until=dast2.sim.now + 4000.0)
        node = dast2.nodes["r1.n0"]
        ts = node.dclock.tick()
        assert ts.time == pytest.approx(node.dclock.physical(), abs=1.0)


class TestValueDependencyFloorHandling:
    def test_committed_input_waiting_crt_keeps_floor_at_commit_ts(self, dast2):
        submit_and_run(dast2, Transaction("seed", [kv_set(0, 0, 5)]))
        dep = Transaction("dep", [
            kv_read_forward(0, 0, "x", piece_index=0),
            kv_apply_input(1, 0, "x", piece_index=1),
        ])
        results = []
        ev = dast2.submit("r0.c0", "r0.n0", dep, timeout=60000.0)
        ev.add_callback(lambda e: results.append(e.value))
        # Run until just after commit lands at r1 but before the pushed
        # input (which needs the producer execution + one more half RTT).
        found_floor_at_commit = False
        for _ in range(80):
            dast2.run(until=dast2.sim.now + 10.0)
            node = dast2.nodes["r1.n0"]
            rec = node.records.get(dep.txn_id)
            if rec is not None and getattr(rec, "status", None) == TxnStatus.COMMITTED:
                if dep.txn_id in node.wait_q and not rec.input_ready():
                    found_floor_at_commit = True
                    break
        assert found_floor_at_commit
        dast2.run(until=dast2.sim.now + 4000.0)
        assert results and results[0].committed

    def test_irt_not_blocked_by_input_waiting_crt(self, dast2):
        """Dependency blocking (Fig 1) does not leak into IRTs."""
        submit_and_run(dast2, Transaction("seed", [kv_set(0, 0, 5)]))
        dep = Transaction("dep", [
            kv_read_forward(0, 0, "x", piece_index=0),
            kv_apply_input(1, 0, "x", piece_index=1),
        ])
        dast2.submit("r0.c0", "r0.n0", dep, timeout=60000.0)
        dast2.run(until=dast2.sim.now + 170.0)  # commit landed, input pending
        t0 = dast2.sim.now
        irt = Transaction("irt", [kv_set(1, 6, 2)])
        submit_and_run(dast2, irt, client="r1.c0", node="r1.n0")
        rec = dast2.nodes["r1.n0"].records[irt.txn_id]
        assert rec.t_executed - t0 < 40.0


class TestObligations:
    def test_reports_capped_until_prepare_acked(self):
        timing = TimingConfig(drop_probability=0.0)
        system = make_dast(regions=1, spr=1, timing=timing)
        system.start()
        system.run(until=50.0)
        node = system.nodes["r0.n0"]
        # Register an obligation slightly in the future; the peer's view of
        # our clock must not advance past it until it clears.
        ts = Timestamp(system.sim.now + 30.0, 0, 0)
        node._obligations.setdefault("r0.n1", {})[999] = ts
        system.run(until=system.sim.now + 60.0)
        peer = system.nodes["r0.n1"]
        assert peer.max_ts["r0.n0"] < ts
        # Clearing the obligation lets the next report jump ahead.
        node._obligations["r0.n1"].clear()
        system.run(until=system.sim.now + 10.0)
        assert peer.max_ts["r0.n0"] > ts

    def test_obligations_cleared_after_delivery(self, dast2):
        submit_and_run(dast2, Transaction("w", [kv_set(0, 1, 1)]))
        dast2.run(until=dast2.sim.now + 200.0)
        for node in dast2.nodes.values():
            for pending in node._obligations.values():
                assert not pending


class TestLossTolerance:
    def test_progress_with_message_drops(self):
        timing = TimingConfig(drop_probability=0.05)
        system = make_dast(regions=2, spr=1, timing=timing, seed=3)
        system.start()
        committed = []
        for i in range(10):
            txn = Transaction("w", [kv_set(0, i % 5, i)])
            ev = system.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
            ev.add_callback(lambda e: committed.append(e.ok))
        system.run(until=30000.0)
        # The client->coordinator link itself is lossy and unretried here,
        # so a submission can be lost end-to-end; the protocol's internal
        # retransmissions must still deliver the vast majority.
        assert len(committed) >= 8 and all(committed)
        assert len(set(system.replicas_digest("s0"))) == 1
        retransmissions = sum(n.stats.get("retransmissions") for n in system.nodes.values())
        assert retransmissions > 0  # drops actually happened and were recovered
