"""The parallel kernel's core invariant: virtual-time output is identical
across serial, lockstep, threaded, and forked-process execution — only
wall-clock may change.  Sub-region sharding carries the weaker pinned
contract documented in :mod:`repro.sim.par.partition`: byte-stable
run-to-run and across partitioned backends, but a distinct serialization
from the single serial kernel.  Also pins the fleet plumbing that reports
on it: mode/backend provenance on outcomes and the bench speedup column.
"""

import hashlib

from dataclasses import replace

from repro.fleet.benchmark import _attach_speedups
from repro.fleet.executor import run_spec
from repro.fleet.spec import TrialSpec, canonical_json


def _virtual_digest(outcome) -> str:
    """Everything the simulation computed; no fingerprint (it embeds
    ``parallel_regions`` by design, so twins differ there), no provenance."""
    blob = canonical_json({
        "row": outcome.row,
        "extras": outcome.extras,
        "committed": outcome.committed,
        "aborted": outcome.aborted,
    }).encode()
    return hashlib.sha256(blob).hexdigest()


CLOSED = TrialSpec(
    system="dast", workload="tpcc",
    num_regions=3, shards_per_region=1, clients_per_region=3,
    duration_ms=900.0, warmup_ms=200.0, cooldown_ms=100.0, seed=7,
    label="par-det/closed",
)

OPEN = TrialSpec(
    system="dast", workload="ycsb",
    workload_params={"theta": 0.7, "crt_ratio": 0.1},
    num_regions=3, shards_per_region=1, clients_per_region=4,
    duration_ms=700.0, warmup_ms=150.0, cooldown_ms=50.0, seed=9,
    open_loop={"users_per_region": 200, "txn_per_user_s": 2.0},
    label="par-det/open",
)


class TestThreadsMatchesSerial:
    def test_closed_loop_tpcc(self):
        serial = run_spec(CLOSED)
        par = run_spec(replace(CLOSED, parallel_regions=3))
        assert serial.parallel_mode == "serial"
        assert par.parallel_mode == "threads"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_open_loop_ycsb(self):
        serial = run_spec(OPEN)
        par = run_spec(replace(OPEN, parallel_regions=3))
        assert par.parallel_mode == "threads"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_threads_self_deterministic(self):
        spec = replace(CLOSED, parallel_regions=3)
        assert _virtual_digest(run_spec(spec)) == _virtual_digest(run_spec(spec))


class TestLockstepMatchesSerial:
    def test_traced_trial_demotes_to_lockstep_and_matches(self):
        from repro.bench.harness import run_trial

        def traced(parallel_regions):
            trial = replace(CLOSED, parallel_regions=parallel_regions).to_trial()
            trial.obs_causal = True
            result = run_trial(trial)
            blob = canonical_json({
                "row": result.summary.as_row(),
                "committed": result.summary.committed,
                "aborted": result.summary.aborted,
                "traced": len(result.obs.traces()),
            }).encode()
            return result.parallel_mode, hashlib.sha256(blob).hexdigest()

        serial_mode, serial_digest = traced(0)
        par_mode, par_digest = traced(3)
        assert serial_mode == "serial"
        assert par_mode == "lockstep"
        assert serial_digest == par_digest


class TestProcessMatchesSerial:
    """The shared-nothing forked backend replays the serial schedule
    byte-for-byte: same windows, same canonical frame order, plus id
    streams re-based per worker so fork never mints colliding ids."""

    def test_closed_loop_tpcc(self):
        serial = run_spec(CLOSED)
        par = run_spec(replace(CLOSED, parallel_regions=3,
                               parallel_backend="process"))
        assert serial.parallel_mode == "serial"
        assert par.parallel_mode == "process"
        assert par.parallel_backend == "process"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_open_loop_ycsb(self):
        serial = run_spec(OPEN)
        par = run_spec(replace(OPEN, parallel_regions=3,
                               parallel_backend="process"))
        assert par.parallel_mode == "process"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_process_self_deterministic(self):
        spec = replace(CLOSED, parallel_regions=3, parallel_backend="process")
        assert _virtual_digest(run_spec(spec)) == _virtual_digest(run_spec(spec))

    def test_traced_trial_demotes_to_lockstep(self):
        # Tracer attachments are single-threaded consumers; an explicit
        # process request never widens eligibility, so traced trials run
        # lockstep (whose serial equivalence TestLockstepMatchesSerial
        # pins) instead of forking.
        from repro.bench.harness import run_trial

        trial = replace(CLOSED, parallel_regions=3,
                        parallel_backend="process").to_trial()
        trial.obs_causal = True
        result = run_trial(trial)
        assert result.parallel_mode == "lockstep"


SUB = replace(
    CLOSED,
    num_regions=1, shards_per_region=3, clients_per_region=6,
    label="par-det/subshard",
)


class TestSubRegionSharding:
    def test_plan_partitions_declines_multi_region(self):
        from repro.config import Topology, TopologyConfig
        from repro.sim.par import plan_partitions

        topo = Topology(TopologyConfig(num_regions=3, shards_per_region=2,
                                       clients_per_region=2))
        assert plan_partitions(topo, 3) is None

    def test_plan_partitions_single_region_shape(self):
        from repro.config import Topology, TopologyConfig
        from repro.sim.par import plan_partitions

        topo = Topology(TopologyConfig(num_regions=1, shards_per_region=3,
                                       clients_per_region=6))
        region = topo.regions[0]
        plan = plan_partitions(topo, 2)  # K = min(requested, shards) = 2
        assert plan is not None
        parts = sorted(set(plan.values()))
        assert parts == [f"{region}@0", f"{region}@1"]
        shards = sorted(topo.shards_in_region(region), key=topo.shard_index)
        # Shards round-robin across partitions, replicas follow shards.
        for j, shard_id in enumerate(shards):
            for host in topo.replicas_of(shard_id):
                assert plan[host] == f"{region}@{j % 2}"
        # The manager pair anchors partition 0.
        assert plan[topo.manager_of(region)] == f"{region}@0"
        assert plan[topo.manager_backup_of(region)] == f"{region}@0"
        # Clients follow the shard they bind to first.
        for i, client in enumerate(topo.clients_in_region(region)):
            assert plan[client] == plan[topo.replicas_of(shards[i % 3])[0]]

    def test_plan_partitions_single_shard_declines(self):
        from repro.config import Topology, TopologyConfig
        from repro.sim.par import plan_partitions

        topo = Topology(TopologyConfig(num_regions=1, shards_per_region=1,
                                       clients_per_region=2))
        assert plan_partitions(topo, 3) is None

    def test_subshard_self_deterministic(self):
        spec = replace(SUB, parallel_regions=3, parallel_backend="process")
        one, two = run_spec(spec), run_spec(spec)
        assert one.parallel_mode == "process"
        assert one.committed > 0
        assert _virtual_digest(one) == _virtual_digest(two)

    def test_subshard_backend_invariant(self):
        # The pinned sub-shard contract: every partitioned backend yields
        # the same serialization (serial may differ in same-instant tie
        # order — see repro.sim.par.partition).
        digests = {}
        for backend in ("lockstep", "threads", "process"):
            out = run_spec(replace(SUB, parallel_regions=3,
                                   parallel_backend=backend))
            assert out.parallel_mode == backend
            digests[backend] = _virtual_digest(out)
        assert digests["lockstep"] == digests["threads"] == digests["process"]


class TestBenchSpeedupColumn:
    def _pair(self):
        base = TrialSpec(system="dast", workload="tpcc", num_regions=3,
                         label="twin")
        return [base, replace(base, parallel_regions=3, label="twin-j3")]

    def test_executed_twins_get_ratio(self):
        specs = self._pair()
        rows = [{"cached": False, "wall_clock_s": 10.0},
                {"cached": False, "wall_clock_s": 4.0}]
        _attach_speedups(specs, rows)
        assert "speedup_vs_serial" not in rows[0]  # serial rows untouched
        assert rows[1]["speedup_vs_serial"] == 2.5
        assert rows[1]["speedup_source"] == "measured"

    def test_cached_twin_still_yields_ratio_flagged_cached(self):
        # A cached wall clock still describes a real run of the same
        # fingerprint, so the ratio survives a cache hit — but it is
        # flagged so readers know the twins may span machine states.
        specs = self._pair()
        rows = [{"cached": True, "wall_clock_s": 10.0},
                {"cached": False, "wall_clock_s": 4.0}]
        _attach_speedups(specs, rows)
        assert rows[1]["speedup_vs_serial"] == 2.5
        assert rows[1]["speedup_source"] == "cached"

    def test_twin_matching_ignores_labels(self):
        specs = self._pair()
        specs[1] = replace(specs[1], label="renamed-elsewhere")
        rows = [{"cached": False, "wall_clock_s": 8.0},
                {"cached": False, "wall_clock_s": 8.0}]
        _attach_speedups(specs, rows)
        assert rows[1]["speedup_vs_serial"] == 1.0

    def test_unpaired_parallel_row_gets_none(self):
        specs = [replace(TrialSpec(label="solo"), parallel_regions=2)]
        rows = [{"cached": False, "wall_clock_s": 5.0}]
        _attach_speedups(specs, rows)
        assert rows[0]["speedup_vs_serial"] is None

    def test_process_backend_twin_pairs_with_serial(self):
        # The serial row carries backend "auto"; the process twin must
        # still match it (twin_key drops parallel_backend alongside
        # parallel_regions).
        specs = self._pair()
        specs[1] = replace(specs[1], parallel_backend="process",
                           label="twin-p3")
        rows = [{"cached": False, "wall_clock_s": 12.0},
                {"cached": False, "wall_clock_s": 6.0}]
        _attach_speedups(specs, rows)
        assert rows[1]["speedup_vs_serial"] == 2.0
        assert rows[1]["speedup_source"] == "measured"
