"""The parallel kernel's core invariant: virtual-time output is identical
across serial, lockstep, and threaded execution — only wall-clock may
change.  Also pins the fleet plumbing that reports on it: mode provenance
on outcomes and the bench speedup column.
"""

import hashlib

from dataclasses import replace

from repro.fleet.benchmark import _attach_speedups
from repro.fleet.executor import run_spec
from repro.fleet.spec import TrialSpec, canonical_json


def _virtual_digest(outcome) -> str:
    """Everything the simulation computed; no fingerprint (it embeds
    ``parallel_regions`` by design, so twins differ there), no provenance."""
    blob = canonical_json({
        "row": outcome.row,
        "extras": outcome.extras,
        "committed": outcome.committed,
        "aborted": outcome.aborted,
    }).encode()
    return hashlib.sha256(blob).hexdigest()


CLOSED = TrialSpec(
    system="dast", workload="tpcc",
    num_regions=3, shards_per_region=1, clients_per_region=3,
    duration_ms=900.0, warmup_ms=200.0, cooldown_ms=100.0, seed=7,
    label="par-det/closed",
)

OPEN = TrialSpec(
    system="dast", workload="ycsb",
    workload_params={"theta": 0.7, "crt_ratio": 0.1},
    num_regions=3, shards_per_region=1, clients_per_region=4,
    duration_ms=700.0, warmup_ms=150.0, cooldown_ms=50.0, seed=9,
    open_loop={"users_per_region": 200, "txn_per_user_s": 2.0},
    label="par-det/open",
)


class TestThreadsMatchesSerial:
    def test_closed_loop_tpcc(self):
        serial = run_spec(CLOSED)
        par = run_spec(replace(CLOSED, parallel_regions=3))
        assert serial.parallel_mode == "serial"
        assert par.parallel_mode == "threads"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_open_loop_ycsb(self):
        serial = run_spec(OPEN)
        par = run_spec(replace(OPEN, parallel_regions=3))
        assert par.parallel_mode == "threads"
        assert serial.committed > 0
        assert _virtual_digest(serial) == _virtual_digest(par)

    def test_threads_self_deterministic(self):
        spec = replace(CLOSED, parallel_regions=3)
        assert _virtual_digest(run_spec(spec)) == _virtual_digest(run_spec(spec))


class TestLockstepMatchesSerial:
    def test_traced_trial_demotes_to_lockstep_and_matches(self):
        from repro.bench.harness import run_trial

        def traced(parallel_regions):
            trial = replace(CLOSED, parallel_regions=parallel_regions).to_trial()
            trial.obs_causal = True
            result = run_trial(trial)
            blob = canonical_json({
                "row": result.summary.as_row(),
                "committed": result.summary.committed,
                "aborted": result.summary.aborted,
                "traced": len(result.obs.traces()),
            }).encode()
            return result.parallel_mode, hashlib.sha256(blob).hexdigest()

        serial_mode, serial_digest = traced(0)
        par_mode, par_digest = traced(3)
        assert serial_mode == "serial"
        assert par_mode == "lockstep"
        assert serial_digest == par_digest


class TestBenchSpeedupColumn:
    def _pair(self):
        base = TrialSpec(system="dast", workload="tpcc", num_regions=3,
                         label="twin")
        return [base, replace(base, parallel_regions=3, label="twin-j3")]

    def test_executed_twins_get_ratio(self):
        specs = self._pair()
        rows = [{"cached": False, "wall_clock_s": 10.0},
                {"cached": False, "wall_clock_s": 4.0}]
        _attach_speedups(specs, rows)
        assert "speedup_vs_serial" not in rows[0]  # serial rows untouched
        assert rows[1]["speedup_vs_serial"] == 2.5
        assert rows[1]["speedup_source"] == "measured"

    def test_cached_twin_still_yields_ratio_flagged_cached(self):
        # A cached wall clock still describes a real run of the same
        # fingerprint, so the ratio survives a cache hit — but it is
        # flagged so readers know the twins may span machine states.
        specs = self._pair()
        rows = [{"cached": True, "wall_clock_s": 10.0},
                {"cached": False, "wall_clock_s": 4.0}]
        _attach_speedups(specs, rows)
        assert rows[1]["speedup_vs_serial"] == 2.5
        assert rows[1]["speedup_source"] == "cached"

    def test_twin_matching_ignores_labels(self):
        specs = self._pair()
        specs[1] = replace(specs[1], label="renamed-elsewhere")
        rows = [{"cached": False, "wall_clock_s": 8.0},
                {"cached": False, "wall_clock_s": 8.0}]
        _attach_speedups(specs, rows)
        assert rows[1]["speedup_vs_serial"] == 1.0

    def test_unpaired_parallel_row_gets_none(self):
        specs = [replace(TrialSpec(label="solo"), parallel_regions=2)]
        rows = [{"cached": False, "wall_clock_s": 5.0}]
        _attach_speedups(specs, rows)
        assert rows[0]["speedup_vs_serial"] is None
