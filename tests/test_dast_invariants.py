"""Whole-run correctness: one-copy serializability audits under load,
message drops, jitter, and clock skew — plus R2 (zero conflict aborts)."""

import pytest

from repro.bench.auditor import audit_dast_run
from repro.bench.harness import Trial, run_trial
from repro.bench.metrics import LatencyRecorder
from repro.config import TimingConfig
from repro.workloads.client import spawn_clients
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload


def run_and_audit(system_factory_kwargs, workload_cls, workload_kwargs,
                  duration=4000.0, drain=4000.0):
    from tests.conftest import make_topology
    from repro.core.system import DastSystem

    topo = make_topology(**system_factory_kwargs)
    workload = workload_cls(topo, **workload_kwargs)
    timing = system_factory_kwargs.get("timing")
    system = DastSystem(topo, workload.schemas(), workload.load, seed=1)
    recorder = LatencyRecorder()
    system.start()
    clients = spawn_clients(system, workload, recorder.record)
    system.run(until=duration)
    for client in clients:
        client.stop()
    system.run(until=duration + drain)
    return system, recorder


class TestSerializabilityAudit:
    def test_tpcc_run_is_one_copy_serializable(self):
        system, recorder = run_and_audit(
            dict(regions=2, spr=2, clients=4), TpccWorkload, dict(seed=1),
        )
        assert len(recorder.results) > 50
        report = audit_dast_run(system)
        assert report.ok, report

    def test_tpca_contended_run_is_serializable(self):
        system, recorder = run_and_audit(
            dict(regions=2, spr=1, clients=6), TpcaWorkload,
            dict(seed=1, theta=0.99, crt_ratio=0.3),
        )
        report = audit_dast_run(system)
        assert report.ok, report

    def test_payment_only_heavy_crt_serializable(self):
        system, recorder = run_and_audit(
            dict(regions=3, spr=1, clients=3), PaymentOnlyWorkload,
            dict(seed=1, crt_ratio=0.5),
        )
        report = audit_dast_run(system)
        assert report.ok, report
        assert any(r.is_crt for r in recorder.results)

    def test_serializable_under_message_drops(self):
        timing = TimingConfig(drop_probability=0.02)
        system, recorder = run_and_audit(
            dict(regions=2, spr=1, clients=3, timing=timing), TpcaWorkload,
            dict(seed=2, theta=0.5, crt_ratio=0.2),
            duration=4000.0, drain=8000.0,
        )
        report = audit_dast_run(system)
        assert report.ok, report

    def test_serializable_under_jitter_and_skew(self):
        from tests.conftest import make_topology
        from repro.core.system import DastSystem

        topo = make_topology(regions=2, spr=2, clients=3)
        workload = TpccWorkload(topo, seed=3)
        system = DastSystem(topo, workload.schemas(), workload.load,
                            seed=3, clock_skew=20.0)
        system.network.jitter = 30.0
        recorder = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, workload, recorder.record)
        system.run(until=4000.0)
        for client in clients:
            client.stop()
        system.run(until=9000.0)
        report = audit_dast_run(system)
        assert report.ok, report


class TestR2NoConflictAborts:
    def test_zero_aborts_in_failure_free_contended_run(self):
        system, recorder = run_and_audit(
            dict(regions=2, spr=1, clients=6), TpcaWorkload,
            dict(seed=4, theta=0.99, crt_ratio=0.4),
        )
        # TPC-A has no conditional aborts; with no failovers, nothing may abort.
        assert all(r.committed for r in recorder.results)
        aborted = sum(n.stats.get("crt_aborted_failover") for n in system.nodes.values())
        assert aborted == 0

    def test_only_conditional_aborts_in_tpcc(self):
        system, recorder = run_and_audit(
            dict(regions=2, spr=1, clients=4), TpccWorkload, dict(seed=5),
        )
        for result in recorder.results:
            if not result.committed:
                assert result.abort_reason == "invalid item"


class TestAuditorDetectsViolations:
    def _good_system(self):
        system, _recorder = run_and_audit(
            dict(regions=2, spr=1, clients=2), TpcaWorkload,
            dict(seed=6, theta=0.5, crt_ratio=0.1),
            duration=2000.0, drain=3000.0,
        )
        return system

    def test_detects_replica_divergence(self):
        system = self._good_system()
        node = system.nodes["r0.n0"]
        node.shard.update("account", (0, 0), {"balance": -424242})
        report = audit_dast_run(system)
        assert not report.ok
        assert report.replica_mismatches

    def test_detects_order_violation(self):
        system = self._good_system()
        node = system.nodes["r0.n0"]
        if len(node.executed_log) >= 2:
            node.executed_log[0], node.executed_log[1] = (
                node.executed_log[1], node.executed_log[0],
            )
            report = audit_dast_run(system)
            assert report.order_violations

    def test_detects_lost_transaction(self):
        system = self._good_system()
        # Drop one executed transaction's effects from every replica by
        # rewriting all replicas consistently: replay mismatch must fire.
        for host in system.catalog.replicas_of("s0"):
            system.nodes[host].shard.update("branch", (0,), {"balance": 0})
        report = audit_dast_run(system)
        assert not report.ok
        assert report.replay_mismatches


class TestDeterminism:
    def test_same_seed_same_execution_history(self):
        """Two runs with identical seeds produce identical executed logs on
        every node — the foundation for reproducible experiments."""
        import itertools

        from repro.txn.model import Transaction

        def run_once():
            # Reset process-global id counters so the two runs are aligned.
            Transaction._ids = itertools.count(1)
            TpcaWorkload._history_ids = itertools.count(1)
            system, _rec = run_and_audit(
                dict(regions=2, spr=1, clients=3), TpcaWorkload,
                dict(seed=9, theta=0.8, crt_ratio=0.2),
                duration=2500.0, drain=3000.0,
            )
            return {
                host: [(str(ts), tid) for ts, tid in node.executed_log]
                for host, node in system.nodes.items()
            }

        first = run_once()
        second = run_once()
        assert first == second
        assert any(first.values())  # the runs actually executed work
