"""Soak test: everything at once — faults, anomalies, load — then audit.

A single mixed scenario combining the paper's §6.3/§6.4 conditions: TPC-C
traffic with message drops and RTT jitter, a node crash + Algorithm 3
failover, a manager takeover, clock skew injected mid-run, and a replica
re-added — followed by the full one-copy-serializability audit.
"""

import pytest

from repro.bench.auditor import audit_dast_run
from repro.bench.metrics import LatencyRecorder
from repro.config import TimingConfig
from repro.core.records import TxnStatus
from repro.workloads.client import spawn_clients
from repro.workloads.tpcc import TpccWorkload
from tests.conftest import make_topology

from repro.core.system import DastSystem


class TestSoak:
    def test_mixed_fault_soak_stays_serializable(self):
        timing = TimingConfig(drop_probability=0.01)
        topo = make_topology(regions=2, spr=2, clients=4, timing=timing, seed=11)
        workload = TpccWorkload(topo, seed=11)
        system = DastSystem(topo, workload.schemas(), workload.load,
                            seed=11, with_smr=True)
        system.network.jitter = 15.0
        recorder = LatencyRecorder()
        system.start()
        # Short request timeout: with lossy links a dropped reply must
        # not park a closed-loop client for 10 virtual seconds.
        clients = spawn_clients(system, workload, recorder.record,
                                request_timeout=2000.0)

        # Phase 1: warm-up traffic.
        system.run(until=1500.0)
        # Phase 2: a data node dies; Algorithm 3 removes it.
        system.crash_node("r0.n1")
        system.run(until=3000.0)
        # Phase 3: region 1's manager dies; the standby takes over.
        system.fail_manager("r1")
        system.run(until=4500.0)
        # Phase 4: region 1's surviving clocks get skewed +100 ms.
        for host, source in system.clock_sources.items():
            if host.startswith("r1."):
                source.adjust(100.0)
        system.run(until=6000.0)
        # Phase 5: a fresh replica replaces the dead one.
        system.add_replica("r0", "r0.n1b", "s0")
        system.run(until=8000.0)

        # Drain and audit.
        for client in clients:
            client.stop()
        system.run(until=16000.0)

        committed = [r for r in recorder.results if r.committed]
        assert len(committed) > 300, "soak produced too little traffic"
        # Some work completed in every phase.
        stamps = sorted(r.finish_time for r in committed)
        for boundary in (1500.0, 3000.0, 4500.0, 6000.0, 8000.0):
            assert any(t > boundary for t in stamps)

        report = audit_dast_run(system)
        assert report.ok, report

        # The re-added replica converged with its donor.
        donor = system.nodes["r0.n0"]
        newcomer = system.nodes["r0.n1b"]
        assert newcomer.shard.digest() == donor.shard.digest()

        # Only legitimate aborts: TPC-C rollbacks and failover CRT aborts.
        for result in recorder.results:
            if not result.committed:
                assert result.abort_reason in ("invalid item", "")

        # No queue residue anywhere (full quiescence).
        for node in system.nodes.values():
            leftover = [
                rec for rec in node.ready_q.records()
                if rec.status not in (TxnStatus.EXECUTED, TxnStatus.ABORTED)
            ]
            assert leftover == [], (node.host, leftover)
