"""Soak test: everything at once — faults, anomalies, load — then audit.

A single mixed scenario combining the paper's §6.3/§6.4 conditions: TPC-C
traffic with message drops and RTT jitter, a node crash + Algorithm 3
failover, a manager takeover, clock skew injected mid-run, and a replica
re-added — followed by the full one-copy-serializability audit.

The fault sequence is expressed as a declarative :class:`FaultPlan`
(see ``repro.chaos``) compiled onto simulator timers, rather than
interleaved ``run()``/inject calls — the schedule below is the same one
the old imperative version produced.
"""

import pytest

from repro.bench.auditor import audit_dast_run
from repro.bench.metrics import LatencyRecorder
from repro.chaos import ChaosRunner, FaultPlan
from repro.config import TimingConfig
from repro.core.records import TxnStatus
from repro.workloads.client import spawn_clients
from repro.workloads.tpcc import TpccWorkload
from tests.conftest import make_topology

from repro.core.system import DastSystem


class TestSoak:
    def test_mixed_fault_soak_stays_serializable(self):
        timing = TimingConfig(drop_probability=0.01)
        topo = make_topology(regions=2, spr=2, clients=4, timing=timing, seed=11)
        workload = TpccWorkload(topo, seed=11)
        system = DastSystem(topo, workload.schemas(), workload.load,
                            seed=11, with_smr=True)
        system.network.jitter = 15.0
        recorder = LatencyRecorder()
        system.start()
        # Short request timeout: with lossy links a dropped reply must
        # not park a closed-loop client for 10 virtual seconds.
        clients = spawn_clients(system, workload, recorder.record,
                                request_timeout=2000.0)

        # Phase 1 is warm-up traffic; then a data node dies (Algorithm 3
        # removes it), region 1's manager dies (standby takes over), region
        # 1's surviving clocks get skewed +100 ms, and a fresh replica
        # replaces the dead node.
        plan = (
            FaultPlan()
            .add(1500.0, "crash_node", host="r0.n1")
            .add(3000.0, "fail_manager", region="r1")
            .add(4500.0, "clock_skew", region="r1", delta=100.0)
            .add(6000.0, "readd_replica", region="r0", host="r0.n1b", shard="s0")
        )
        runner = ChaosRunner(system, plan, origin=0.0).install()
        system.run(until=8000.0)
        assert len(runner.applied) == 4

        # Drain and audit.
        for client in clients:
            client.stop()
        system.run(until=16000.0)

        committed = [r for r in recorder.results if r.committed]
        assert len(committed) > 300, "soak produced too little traffic"
        # Some work completed in every phase.
        stamps = sorted(r.finish_time for r in committed)
        for boundary in (1500.0, 3000.0, 4500.0, 6000.0, 8000.0):
            assert any(t > boundary for t in stamps)

        report = audit_dast_run(system)
        assert report.ok, report

        # The re-added replica converged with its donor.
        donor = system.nodes["r0.n0"]
        newcomer = system.nodes["r0.n1b"]
        assert newcomer.shard.digest() == donor.shard.digest()

        # Only legitimate aborts: TPC-C rollbacks and failover CRT aborts.
        for result in recorder.results:
            if not result.committed:
                assert result.abort_reason in ("invalid item", "")

        # No queue residue on any live node (full quiescence).  The crashed
        # node's queues are frozen at crash time, not stuck.
        for node in system.nodes.values():
            if not node._running:
                continue
            leftover = [
                rec for rec in node.ready_q.records()
                if rec.status not in (TxnStatus.EXECUTED, TxnStatus.ABORTED)
            ]
            assert leftover == [], (node.host, leftover)
