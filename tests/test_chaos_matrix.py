"""Randomized chaos matrix: generated fault scenarios against DAST.

Every generated scenario is *recoverable* by construction (partitions heal,
windows close — see ``repro.chaos.generator``), so DAST must come out of
each one serializable (``audit_dast_run(...).ok``) and with **zero** CRT
conflict aborts (the paper's R2: cross-region conflicts never abort).

On failure the test prints the seed plus a delta-debugged minimal
reproducer, ready to pin as a regression (see
``TestPinnedRegressions`` for the shape).
"""

import pytest

from repro.chaos import FaultPlan, generate_plan, run_chaos_trial, shrink_plan

# ≥10 seeded scenarios per the chaos-matrix contract; each seed yields a
# different mix of crashes, failovers, partitions, drop bursts, latency
# spikes, gray degradation, and clock-skew ramps.
MATRIX_SEEDS = list(range(12))


def _trial_seed(seed: int) -> int:
    # Decouple the workload/network seed from the plan seed so the matrix
    # varies both the fault mix and the traffic it lands on.
    return 100 + seed


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", MATRIX_SEEDS)
    def test_generated_scenario_stays_serializable(self, seed):
        plan = generate_plan(seed)
        report = run_chaos_trial(plan, seed=_trial_seed(seed))
        if not report.ok:
            shrunk = shrink_plan(
                plan,
                lambda p: not run_chaos_trial(p, seed=_trial_seed(seed)).ok,
                max_runs=32,
            )
            pytest.fail(
                f"chaos seed={seed} failed the audit.\n"
                f"minimal reproducer ({shrunk.runs} shrink runs):\n"
                f"{shrunk.plan.timeline()}\n"
                f"json: {shrunk.plan.to_json()}\n\n"
                f"full report:\n{report.to_text()}"
            )
        assert report.audit is not None and report.audit.ok
        assert report.conflict_aborts == []  # R2: no conflict-driven CRT aborts
        assert report.committed > 0
        assert report.faults_applied == len(plan.events)


class TestPinnedRegressions:
    def test_manager_failover_during_region_partition_then_heal(self):
        """A manager fails over while its region is partitioned away; after
        the heal the system must drain to a serializable state."""
        plan = (
            FaultPlan(name="failover-during-partition")
            .add(800.0, "partition_regions", r1="r0", r2="r1")
            .add(1000.0, "fail_manager", region="r1")
            .add(1700.0, "heal_regions", r1="r0", r2="r1")
        )
        report = run_chaos_trial(plan, seed=7)
        assert report.ok, report.to_text()
        assert report.audit.ok
        assert report.conflict_aborts == []
        assert report.committed > 0

    def test_abort_of_announced_crt_clears_nonparticipant_floors(self):
        """Shrunk from fuzz seed 0 on the 2x2 TPC-C topology: a manager
        failover followed by a participant-replica crash.  The crash removes
        a node that was coordinating CRTs; aborting them must also clear the
        announce floors on *non-participating* intra-region nodes, or their
        frozen dclocks wedge the PCT watermark and later committed CRTs
        never execute (partial execution -> replay divergence)."""
        plan = (
            FaultPlan(name="abort-floor-leak")
            .add(1381.5, "fail_manager", region="r1")
            .add(2061.8, "crash_node", host="r0.n5")
        )
        report = run_chaos_trial(plan, workload="tpcc", num_regions=2,
                                 shards_per_region=2, clients_per_region=8,
                                 duration_ms=6000.0, drain_ms=6000.0, seed=0)
        assert report.ok, report.to_text()
        assert report.conflict_aborts == []


class TestDeterminism:
    def test_same_plan_same_seed_byte_identical_reports(self):
        plan = generate_plan(4)
        first = run_chaos_trial(plan, seed=104)
        second = run_chaos_trial(generate_plan(4), seed=104)
        assert first.to_text() == second.to_text()
        assert plan.timeline() == generate_plan(4).timeline()


class TestShrinkerAcceptance:
    def test_unrecoverable_scenario_shrinks_to_tiny_reproducer(self):
        """An intentionally-broken plan (partition that never heals, buried
        in benign noise) must shrink to a handful of events."""
        broken = (
            FaultPlan(name="broken")
            .add(500.0, "set_jitter", jitter=10.0)
            .add(600.0, "set_drop", probability=0.02)
            .add(700.0, "partition_regions", r1="r0", r2="r1")  # never healed
            .add(1100.0, "set_drop", probability=0.0)
            .add(1200.0, "set_jitter", jitter=0.0)
            .add(1400.0, "clock_skew", region="r1", delta=40.0)
        )

        def is_failing(plan):
            report = run_chaos_trial(
                plan, duration_ms=2000.0, drain_ms=4000.0,
                clients_per_region=2, seed=5,
            )
            return not report.ok

        assert is_failing(broken), "the broken scenario must actually fail"
        result = shrink_plan(broken, is_failing, max_runs=32)
        assert len(result.plan) <= 3
        kinds = {e.kind for e in result.plan.events}
        assert "partition_regions" in kinds
        assert "heal_regions" not in kinds
