"""Smoke checks for the example scripts (compile + key entry points)."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {"quickstart.py", "compare_systems.py", "smart_city.py",
                "failover_demo.py", "full_evaluation.py"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_smart_city_workload_runs_small(self):
        """Drive the smart-city example's workload through the public API
        at reduced scale (the script itself runs a longer scenario)."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "smart_city_example",
            str(pathlib.Path(__file__).resolve().parent.parent / "examples" / "smart_city.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        from repro.bench.metrics import LatencyRecorder
        from repro.config import Topology, TopologyConfig
        from repro.core.system import DastSystem
        from repro.workloads.client import spawn_clients

        topo = Topology(TopologyConfig(num_regions=2, shards_per_region=1,
                                       clients_per_region=2))
        workload = module.SmartCityWorkload(topo, handoff_ratio=0.2)
        system = DastSystem(topo, workload.schemas(), workload.load)
        recorder = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, workload, recorder.record)
        system.run(until=2500.0)
        for client in clients:
            client.stop()
        system.run(until=5500.0)
        assert len(recorder.results) > 20
        kinds = {r.txn_type for r in recorder.results}
        assert "reserve_lane" in kinds
        for shard in topo.all_shards():
            assert len(set(system.replicas_digest(shard))) == 1
