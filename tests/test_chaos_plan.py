"""Unit tests for the chaos subsystem: plans, generator, shrinker, runner.

Simulation-free where possible (plan algebra, generation invariants,
synthetic-oracle shrinking); the end-to-end fault trials live in
``tests/test_chaos_matrix.py``.
"""

import pytest

from repro.chaos import (
    ChaosProfile,
    ChaosRunner,
    FaultEvent,
    FaultPlan,
    generate_plan,
    shrink_plan,
)
from repro.errors import ConfigError


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan().add(10.0, "meteor_strike", host="r0.n0")

    def test_missing_args_rejected(self):
        with pytest.raises(ConfigError, match="missing args"):
            FaultPlan().add(10.0, "crash_node")

    def test_unexpected_args_rejected(self):
        with pytest.raises(ConfigError, match="unexpected args"):
            FaultPlan().add(10.0, "fail_manager", region="r0", flavor="spicy")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError, match="time must be >= 0"):
            FaultPlan().add(-1.0, "fail_manager", region="r0")

    def test_optional_args_accepted(self):
        plan = (
            FaultPlan()
            .add(5.0, "crash_node", host="r0.n0", report=False)
            .add(6.0, "set_rtt", rtt=200.0, r1="r0", r2="r1")
            .add(7.0, "clock_skew", delta=50.0, host="r0.n1")
        )
        assert len(plan) == 3


class TestFaultPlanSerialization:
    def _sample(self):
        return (
            FaultPlan(name="sample", seed=42)
            .add(100.0, "crash_node", host="r0.n1")
            .add(50.0, "set_drop", probability=0.05)
            .add(100.0, "fail_manager", region="r1")
            .add(900.0, "heal_regions", r1="r0", r2="r1")
            .add(300.0, "partition_regions", r1="r0", r2="r1")
        )

    def test_events_kept_time_sorted(self):
        plan = self._sample()
        times = [e.time for e in plan.events]
        assert times == sorted(times)

    def test_same_instant_events_keep_authored_order(self):
        plan = self._sample()
        at_100 = [e.kind for e in plan.events if e.time == 100.0]
        assert at_100 == ["crash_node", "fail_manager"]

    def test_json_roundtrip_is_byte_identical(self):
        plan = self._sample()
        text = plan.to_json()
        again = FaultPlan.from_json(text)
        assert again.to_json() == text
        assert again.name == "sample" and again.seed == 42
        assert [e.to_dict() for e in again.events] == [e.to_dict() for e in plan.events]

    def test_timeline_is_deterministic(self):
        assert self._sample().timeline() == self._sample().timeline()

    def test_subset_keeps_selected_events_in_order(self):
        plan = self._sample()
        sub = plan.subset([0, 2, 4])
        assert len(sub) == 3
        assert [e.time for e in sub.events] == [
            plan.events[i].time for i in (0, 2, 4)
        ]


class TestGenerator:
    def test_same_seed_same_plan(self):
        for seed in (0, 1, 7, 123):
            a, b = generate_plan(seed), generate_plan(seed)
            assert a.to_json() == b.to_json()
            assert a.timeline() == b.timeline()

    def test_different_seeds_differ(self):
        assert generate_plan(1).to_json() != generate_plan(2).to_json()

    def test_generated_plans_are_recoverable(self):
        """Structural invariants: partitions heal, windows close, bounded
        crash/failover counts — the generator's recoverability contract."""
        for seed in range(30):
            plan = generate_plan(seed)
            partitions = {"partition_regions": 0, "heal_regions": 0,
                          "partition_regions_oneway": 0, "heal_regions_oneway": 0}
            last_drop = last_jitter = last_reorder = 0.0
            crashes = 0
            failovers = {}
            for event in plan.events:
                if event.kind in partitions:
                    partitions[event.kind] += 1
                elif event.kind == "set_drop":
                    last_drop = event.args["probability"]
                elif event.kind == "set_jitter":
                    last_jitter = event.args["jitter"]
                elif event.kind == "set_reorder":
                    last_reorder = event.args["spread"]
                elif event.kind == "crash_node":
                    crashes += 1
                elif event.kind == "fail_manager":
                    region = event.args["region"]
                    failovers[region] = failovers.get(region, 0) + 1
            assert partitions["partition_regions"] == partitions["heal_regions"]
            assert (partitions["partition_regions_oneway"]
                    == partitions["heal_regions_oneway"])
            assert last_drop == 0.0 and last_jitter == 0.0 and last_reorder == 0.0
            assert crashes <= 2  # at most one per shard (2 shards by default)
            assert all(count == 1 for count in failovers.values())
            assert all(e.kind != "set_duplicate" for e in plan.events)

    def test_duplication_is_opt_in(self):
        profile = ChaosProfile(allow_duplication=True, min_clauses=20, max_clauses=20)
        plan = generate_plan(3, profile=profile)
        assert any(e.kind == "set_duplicate" for e in plan.events)

    def test_dast_faults_can_be_excluded_for_baselines(self):
        profile = ChaosProfile(allow_dast_faults=False, min_clauses=20, max_clauses=20)
        for seed in range(8):
            plan = generate_plan(seed, profile=profile)
            kinds = {e.kind for e in plan.events}
            assert not kinds & {"fail_manager", "readd_replica", "report_failure"}

    def test_baseline_profile_leaves_default_seeds_unchanged(self):
        # The allow_dast_faults gate must not shift the rng draw sequence:
        # default-profile plans are pinned by CI seeds and regressions.
        for seed in range(8):
            assert (generate_plan(seed).to_json()
                    == generate_plan(seed, profile=ChaosProfile()).to_json())

    def test_generated_plan_validates(self):
        for seed in range(10):
            generate_plan(seed).validate()


class TestShrinker:
    def _plan(self, n=8):
        plan = FaultPlan(name="synthetic")
        for i in range(n):
            plan.add(float(i * 10), "set_jitter", jitter=float(i))
        return plan

    def test_shrinks_to_single_culprit(self):
        plan = self._plan()
        culprit = plan.events[5].args["jitter"]

        def is_failing(candidate):
            return any(e.args["jitter"] == culprit for e in candidate.events)

        result = shrink_plan(plan, is_failing)
        assert len(result.plan) == 1
        assert result.plan.events[0].args["jitter"] == culprit
        assert not result.exhausted

    def test_shrinks_to_failing_pair(self):
        plan = self._plan()

        def is_failing(candidate):
            jitters = {e.args["jitter"] for e in candidate.events}
            return {2.0, 6.0} <= jitters

        result = shrink_plan(plan, is_failing)
        assert sorted(e.args["jitter"] for e in result.plan.events) == [2.0, 6.0]

    def test_passing_plan_returned_unchanged(self):
        plan = self._plan()
        result = shrink_plan(plan, lambda p: False)
        assert len(result.plan) == len(plan)
        assert result.runs == 1  # only the initial check

    def test_budget_exhaustion_returns_best_so_far(self):
        plan = self._plan(12)
        result = shrink_plan(plan, lambda p: True, max_runs=3)
        assert result.exhausted
        assert len(result.plan) >= 1

    def test_oracle_runs_are_memoized(self):
        plan = self._plan()
        calls = [0]

        def is_failing(candidate):
            calls[0] += 1
            return any(e.args["jitter"] == 3.0 for e in candidate.events)

        result = shrink_plan(plan, is_failing, max_runs=200)
        assert calls[0] == result.runs <= 40


class TestChaosRunnerDispatch:
    def test_install_twice_rejected(self):
        from tests.conftest import make_dast

        system = make_dast()
        runner = ChaosRunner(system, FaultPlan().add(1.0, "set_jitter", jitter=5.0))
        runner.install()
        with pytest.raises(ConfigError):
            runner.install()

    def test_events_fire_at_scheduled_virtual_times(self):
        from tests.conftest import make_dast

        system = make_dast()
        system.start()
        plan = (
            FaultPlan()
            .add(100.0, "set_drop", probability=0.02)
            .add(250.0, "set_drop", probability=0.0)
            .add(400.0, "set_jitter", jitter=8.0)
        )
        runner = ChaosRunner(system, plan, origin=0.0).install()
        assert system.chaos is runner
        system.run(until=500.0)
        assert [round(t, 6) for t, _e, _r in runner.applied] == [100.0, 250.0, 400.0]
        assert [e.kind for _t, e, _r in runner.applied] == [
            "set_drop", "set_drop", "set_jitter"
        ]
        assert system.network.jitter == 8.0
        assert system.stats.get("chaos_faults") == 3
        assert system.stats.get("chaos_set_drop") == 2

    def test_faults_visible_to_tracer_and_probes(self):
        from tests.conftest import make_dast

        system = make_dast()
        tracer = system.attach_tracer(kinds={"chaos"})
        system.start()
        ChaosRunner(system, FaultPlan().add(50.0, "set_jitter", jitter=3.0)).install()
        system.run(until=100.0)
        chaos_events = [ev for ev in tracer.events if ev.kind == "chaos"]
        assert len(chaos_events) == 1
        assert chaos_events[0].fields["fault"] == "set_jitter"
        # The chaos_faults probe samples the applied count once a plan exists.
        from repro.obs.probes import standard_probes

        probes = dict(standard_probes(system))
        assert probes["chaos_faults"]() == 1
