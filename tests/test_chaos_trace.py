"""Trace-context propagation under chaos (satellite: crash + partition +
reorder): every committed transaction must still yield one connected span
tree — no orphan spans, no cross-tree leakage."""

import pytest

from repro.bench.harness import Trial, run_trial
from repro.chaos.plan import FaultPlan
from repro.workloads.tpcc import TpccWorkload


@pytest.fixture(scope="module")
def chaotic_result():
    plan = (FaultPlan(name="trace-chaos")
            .add(300.0, "crash_node", host="r1.n1")
            .add(450.0, "set_reorder", spread=3.0)
            .add(500.0, "partition_regions", r1="r0", r2="r1")
            .add(800.0, "heal_regions", r1="r0", r2="r1"))
    trial = Trial("dast", lambda topo: TpccWorkload(topo),
                  clients_per_region=4, duration_ms=2500.0,
                  warmup_ms=300.0, cooldown_ms=200.0, seed=11,
                  obs_causal=True, fault_plan=plan, request_timeout=1500.0)
    result = run_trial(trial)
    return result, result.obs.traces()


class TestChaosTracePropagation:
    def test_faults_actually_applied(self, chaotic_result):
        result, _ = chaotic_result
        assert result.chaos is not None
        assert len(result.chaos.applied) == 4

    def test_committed_txns_yield_single_connected_trees(self, chaotic_result):
        _, traces = chaotic_result
        committed = [t for t in traces.values()
                     if t.complete and t.root.ok]
        assert len(committed) > 50
        for trace in committed:
            assert trace.orphans() == []
            root = trace.root
            by_id = {h.span_id: h for h in trace.hops}
            for hop in trace.hops:
                assert hop.trace_id == root.trace_id
                # The parent chain must terminate at this trace's root.
                seen = set()
                pid = hop.parent_id
                while pid is not None and pid != root.span_id:
                    assert pid not in seen, "parent cycle"
                    seen.add(pid)
                    parent = by_id.get(pid)
                    assert parent is not None, "orphaned parent pointer"
                    pid = parent.parent_id
                assert pid == root.span_id

    def test_partition_produces_dropped_hops(self, chaotic_result):
        """The chaos actually bit: some traced hops died on the wire, and
        they are recorded as dropped rather than silently vanishing."""
        _, traces = chaotic_result
        dropped = sum(1 for t in traces.values()
                      for h in t.hops if h.status == "dropped")
        assert dropped > 0

    def test_timed_out_txns_still_yield_connected_trees(self, chaotic_result):
        """The closed-loop client abandons a txn on timeout (it never
        resubmits the same txn_id), so failures show up as roots with
        ok=False — their partial trees must still be connected."""
        _, traces = chaotic_result
        failed = [t for t in traces.values()
                  if t.complete and not t.root.ok]
        assert failed, "expected request timeouts under partition"
        for trace in failed:
            assert trace.orphans() == []
            assert trace.root.retries == 0

    def test_no_span_id_collisions_across_traces(self, chaotic_result):
        _, traces = chaotic_result
        seen = set()
        for trace in traces.values():
            for hop in trace.hops:
                assert hop.span_id not in seen
                seen.add(hop.span_id)
