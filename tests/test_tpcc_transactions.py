"""Semantic tests for the five TPC-C transaction bodies."""

import pytest

from repro.config import Topology, TopologyConfig
from repro.storage.shard import Shard
from repro.txn.executor import execute_serially
from repro.workloads.tpcc import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    INITIAL_ORDERS_PER_DISTRICT,
    ITEMS,
    build_delivery,
    build_new_order,
    build_order_status,
    build_payment,
    build_stock_level,
    last_name,
    load_warehouse,
    tpcc_schemas,
)


@pytest.fixture
def topo():
    return Topology(TopologyConfig(num_regions=2, shards_per_region=1, clients_per_region=1))


@pytest.fixture
def shards():
    out = {}
    for w in (0, 1):
        shard = Shard(f"s{w}", tpcc_schemas())
        load_warehouse(shard, w)
        out[w] = shard
    return out


def run_txn(txn, shards):
    """Sequentially execute a transaction's pieces across shards."""
    outcome = execute_serially(txn, lambda shard_id: shards[int(shard_id[1:])])
    outcomes = {shard_id: outcome for shard_id in txn.shard_ids}
    return outcome.outputs, outcomes


class TestLoader:
    def test_cardinalities(self, shards):
        shard = shards[0]
        assert len(shard.table("district")) == DISTRICTS_PER_WAREHOUSE
        assert len(shard.table("item")) == ITEMS
        assert len(shard.table("stock")) == ITEMS
        assert len(shard.table("customer")) == DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT
        assert len(shard.table("new_order")) == DISTRICTS_PER_WAREHOUSE * INITIAL_ORDERS_PER_DISTRICT

    def test_load_is_deterministic_across_replicas(self):
        a, b = Shard("s0", tpcc_schemas()), Shard("s0", tpcc_schemas())
        load_warehouse(a, 3)
        load_warehouse(b, 3)
        assert a.digest() == b.digest()

    def test_last_name_generator_matches_spec(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"


class TestNewOrder:
    def test_local_order_inserts_rows_and_bumps_district(self, topo, shards):
        district_before = shards[0].get("district", (0, 1))
        txn = build_new_order(topo, 0, 1, 2, [(5, 0, 3), (6, 0, 2)])
        env, outcomes = run_txn(txn, shards)
        o_id = env["o_id"]
        assert o_id == district_before["d_next_o_id"]
        assert shards[0].get("district", (0, 1))["d_next_o_id"] == o_id + 1
        assert shards[0].get("orders", (0, 1, o_id))["o_ol_cnt"] == 2
        assert shards[0].get("new_order", (0, 1, o_id)) is not None
        line = shards[0].get("order_line", (0, 1, o_id, 0))
        assert line["ol_i_id"] == 5 and line["ol_quantity"] == 3

    def test_stock_decremented_with_refill(self, topo, shards):
        stock_before = shards[0].get("stock", (0, 5))["s_quantity"]
        txn = build_new_order(topo, 0, 0, 0, [(5, 0, 4)])
        run_txn(txn, shards)
        after = shards[0].get("stock", (0, 5))
        expected = stock_before - 4
        if expected < 10:
            expected += 91
        assert after["s_quantity"] == expected
        assert after["s_ytd"] == 4
        assert after["s_order_cnt"] == 1
        assert after["s_remote_cnt"] == 0

    def test_remote_line_updates_remote_stock(self, topo, shards):
        txn = build_new_order(topo, 0, 0, 0, [(5, 0, 1), (7, 1, 2)])
        assert txn.shard_ids == ("s0", "s1")
        run_txn(txn, shards)
        remote = shards[1].get("stock", (1, 7))
        assert remote["s_ytd"] == 2
        assert remote["s_remote_cnt"] == 1

    def test_total_amount_is_price_times_qty(self, topo, shards):
        price5 = shards[0].get("item", (5,))["i_price"]
        txn = build_new_order(topo, 0, 0, 0, [(5, 0, 2)])
        env, _ = run_txn(txn, shards)
        assert env["total_amount"] == pytest.approx(price5 * 2)

    def test_invalid_item_rolls_back_everywhere(self, topo, shards):
        digest_home = shards[0].digest()
        digest_remote = shards[1].digest()
        txn = build_new_order(topo, 0, 0, 0, [(5, 0, 1), (ITEMS + 99, 1, 2)])
        _env, outcomes = run_txn(txn, shards)
        assert all(o.aborted for o in outcomes.values())
        assert shards[0].digest() == digest_home
        assert shards[1].digest() == digest_remote

    def test_no_value_dependencies(self, topo):
        txn = build_new_order(topo, 0, 0, 0, [(5, 0, 1), (7, 1, 2)])
        assert not txn.has_value_dependency()


class TestPayment:
    def test_by_id_updates_ytd_and_balance(self, topo, shards):
        w_before = shards[0].get("warehouse", (0,))["w_ytd"]
        c_before = shards[1].get("customer", (1, 0, 3))["c_balance"]
        txn = build_payment(topo, 0, 0, 1, 0, 120.0, c_id=3)
        env, _ = run_txn(txn, shards)
        assert env["resolved_c_id"] == 3
        assert shards[0].get("warehouse", (0,))["w_ytd"] == pytest.approx(w_before + 120.0)
        assert shards[1].get("customer", (1, 0, 3))["c_balance"] == pytest.approx(c_before - 120.0)

    def test_history_row_written_at_home(self, topo, shards):
        txn = build_payment(topo, 0, 1, 1, 2, 55.0, c_id=4)
        run_txn(txn, shards)
        rows = [row for _k, row in shards[0].table("history").scan() if row["h_amount"] == 55.0]
        assert len(rows) == 1
        assert rows[0]["h_c_id"] == 4 and rows[0]["h_c_w_id"] == 1 and rows[0]["h_d_id"] == 1
        assert "W0" in rows[0]["h_data"]

    def test_by_name_picks_middle_match(self, topo, shards):
        name = last_name(1)
        keys = shards[0].table("customer").lookup("by_last", (0, 0, name))
        assert keys  # the workload contract guarantees resolvable names
        expected = keys[len(keys) // 2][2]
        txn = build_payment(topo, 0, 0, 0, 0, 10.0, c_last=name)
        env, _ = run_txn(txn, shards)
        assert env["resolved_c_id"] == expected

    def test_bad_credit_customer_gets_data_trail(self, topo, shards):
        bc = None
        for key, row in shards[0].table("customer").scan():
            if row["c_credit"] == "BC":
                bc = row
                break
        assert bc is not None
        txn = build_payment(topo, 0, 0, 0, bc["c_d_id"], 33.0, c_id=bc["c_id"])
        run_txn(txn, shards)
        after = shards[0].get("customer", (0, bc["c_d_id"], bc["c_id"]))
        assert after["c_data"].startswith(f"{bc['c_id']},")

    def test_cross_warehouse_payment_has_value_dependency(self, topo):
        txn = build_payment(topo, 0, 0, 1, 0, 10.0, c_last=last_name(2))
        assert txn.has_value_dependency()
        assert txn.dependency_edges() == {("s1", "s0")}

    def test_id_xor_name_enforced(self, topo):
        with pytest.raises(ValueError):
            build_payment(topo, 0, 0, 0, 0, 1.0)
        with pytest.raises(ValueError):
            build_payment(topo, 0, 0, 0, 0, 1.0, c_id=1, c_last="X")


class TestOrderStatus:
    def test_reports_latest_order(self, topo, shards):
        no = build_new_order(topo, 0, 0, 7, [(5, 0, 1)])
        env, _ = run_txn(no, shards)
        txn = build_order_status(topo, 0, 0, c_id=7)
        out, outcomes = run_txn(txn, shards)
        assert out["last_order"] == env["o_id"]
        assert out["lines"] == [(5, 1, pytest.approx(shards[0].get("item", (5,))["i_price"]))]

    def test_read_only(self, topo, shards):
        before = shards[0].digest()
        run_txn(build_order_status(topo, 0, 0, c_id=1), shards)
        assert shards[0].digest() == before


class TestDelivery:
    def test_delivers_oldest_order_per_district(self, topo, shards):
        pending_before = len(shards[0].table("new_order"))
        txn = build_delivery(topo, 0, carrier_id=7, now=123.0)
        env, _ = run_txn(txn, shards)
        assert len(env["delivered"]) == DISTRICTS_PER_WAREHOUSE
        assert len(shards[0].table("new_order")) == pending_before - DISTRICTS_PER_WAREHOUSE
        d_id, o_id = env["delivered"][0]
        order = shards[0].get("orders", (0, d_id, o_id))
        assert order["o_carrier_id"] == 7
        line = shards[0].get("order_line", (0, d_id, o_id, 0))
        assert line["ol_delivery_ts"] == 123.0

    def test_customer_credited_with_order_total(self, topo, shards):
        txn = build_delivery(topo, 0, carrier_id=1)
        env, _ = run_txn(txn, shards)
        d_id, o_id = env["delivered"][0]
        order = shards[0].get("orders", (0, d_id, o_id))
        total = sum(
            shards[0].get("order_line", (0, d_id, o_id, n))["ol_amount"]
            for n in range(order["o_ol_cnt"])
        )
        customer = shards[0].get("customer", (0, d_id, order["o_c_id"]))
        assert customer["c_balance"] == pytest.approx(-10.0 + total)
        assert customer["c_delivery_cnt"] == 1

    def test_empty_district_skipped(self, topo, shards):
        for _ in range(INITIAL_ORDERS_PER_DISTRICT):
            run_txn(build_delivery(topo, 0, carrier_id=1), shards)
        env, _ = run_txn(build_delivery(topo, 0, carrier_id=1), shards)
        assert env["delivered"] == []


class TestStockLevel:
    def test_counts_low_stock_items(self, topo, shards):
        txn = build_stock_level(topo, 0, 0, threshold=200)
        env, _ = run_txn(txn, shards)
        assert env["low_stock"] > 0  # all stock < 200 initially

        txn = build_stock_level(topo, 0, 0, threshold=1)
        env, _ = run_txn(txn, shards)
        assert env["low_stock"] == 0

    def test_read_only(self, topo, shards):
        before = shards[0].digest()
        run_txn(build_stock_level(topo, 0, 0, threshold=50), shards)
        assert shards[0].digest() == before
