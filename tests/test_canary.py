"""Golden-trace canary: exact-match pass, tolerance bands, regression gate."""

import pytest

from repro.fleet.spec import TrialSpec
from repro.obs.canary import (BANDS, CANARY_SCHEMA, SCENARIOS, capture,
                              compare, render_report, repro_command,
                              scenario_by_label)

# A trimmed scenario so the test suite stays fast; the pinned SCENARIOS run
# in CI's canary job, not here.
SMALL = (
    TrialSpec(system="dast", workload="tpcc", clients_per_region=4,
              duration_ms=1200.0, warmup_ms=300.0, cooldown_ms=200.0,
              seed=1, label="small-tpcc"),
)


@pytest.fixture(scope="module")
def golden():
    return capture(SMALL)


class TestCapture:
    def test_document_shape(self, golden):
        assert golden["schema"] == CANARY_SCHEMA
        entry = golden["scenarios"]["small-tpcc"]
        assert len(entry["trace_digest"]) == 64
        assert entry["traced_txns"] > 100
        assert entry["coverage"] >= 0.95
        assert entry["trace_bytes_sent"] > 0
        assert entry["hops"] and entry["msgs_by_type"]
        assert "crt_p99_ms" in entry["row"]

    def test_pinned_scenarios_resolve(self):
        for spec in SCENARIOS:
            assert scenario_by_label(spec.label) is spec
            cmd = repro_command(spec)
            assert cmd.startswith("python -m repro trace")
            assert f"--seed {spec.seed}" in cmd
        with pytest.raises(KeyError):
            scenario_by_label("nope")


class TestCompare:
    def test_identical_build_is_exact_byte_match(self, golden):
        candidate = capture(SMALL)
        report = compare(golden, candidate)
        assert report["ok"]
        assert report["scenarios"]["small-tpcc"]["status"] == "exact"
        assert "exact trace match" in render_report(report)

    def test_injected_regression_fails_naming_cross_region_hop(self, golden):
        """+40% cross-region RTT (=> well over +20% CRT p99) must trip the
        gate, name a cross-region hop, and print a repro command."""
        candidate = capture(SMALL, timing_override={"cross_region_rtt": 140.0})
        report = compare(golden, candidate)
        assert not report["ok"]
        entry = report["scenarios"]["small-tpcc"]
        assert entry["status"] == "fail"
        metrics = {v["metric"] for v in entry["violations"]}
        assert "crt_p99_ms" in metrics
        assert "(cross)" in entry["offending_hop"]["segment"]
        assert entry["offending_hop"]["delta_ms"] > 0
        text = render_report(report)
        assert "FAIL" in text and "offending hop" in text

    def test_missing_scenario_fails(self, golden):
        candidate = {"schema": CANARY_SCHEMA, "code_version": "x",
                     "scenarios": {}}
        report = compare(golden, candidate)
        assert not report["ok"]
        assert report["scenarios"]["small-tpcc"]["status"] == "missing"

    def test_schema_mismatch_rejected(self, golden):
        with pytest.raises(ValueError):
            compare({"schema": "bogus", "scenarios": {}}, golden)

    def test_tolerance_override_widens_bands(self, golden):
        candidate = capture(SMALL, timing_override={"cross_region_rtt": 140.0})
        lax = compare(golden, candidate, tolerance=10.0)
        assert lax["ok"]  # digest differs, but every band passes
        assert lax["scenarios"]["small-tpcc"]["status"] == "band"

    def test_bands_cover_tail_metrics(self):
        assert "crt_p99_ms" in BANDS and "msgs_total" in BANDS
        rel, _ = BANDS["crt_p99_ms"]
        assert rel <= 0.15  # a +20% p99 regression can never slip through


class TestWireDigest:
    """The wire-message-stream digest rides alongside the span-tree digest:
    id-free, order-invariant for same-instant frames, and part of the
    exact-match check only when both documents carry it."""

    def test_capture_includes_wire_digest(self, golden):
        entry = golden["scenarios"]["small-tpcc"]
        assert len(entry["wire_digest"]) == 64

    def test_multiset_digest_is_append_order_invariant(self):
        from repro.obs.canary import wire_digest

        log = [(1.0, "r0.n0", "r1.n0", "prepare", 120),
               (1.0, "r1.n0", "r0.n0", "ack", 40),
               (2.5, "r0.c0", "r0.n0", "submit", 80)]
        assert wire_digest(log) == wire_digest(list(reversed(log)))
        assert wire_digest(None) is None
        # Any observable change — here one byte of one frame — moves it.
        bumped = [log[0], (1.0, "r1.n0", "r0.n0", "ack", 41), log[2]]
        assert wire_digest(log) != wire_digest(bumped)

    def test_parallel_twin_is_exact_match(self, golden):
        """The region-partitioned kernel (demoted to lockstep under causal
        tracing) must reproduce both digests byte-for-byte."""
        from dataclasses import replace

        twin = tuple(replace(s, parallel_regions=2) for s in SMALL)
        report = compare(golden, capture(twin))
        assert report["ok"]
        assert report["scenarios"]["small-tpcc"]["status"] == "exact"

    def test_process_backend_twin_is_exact_match(self, golden):
        """Requesting the forked process backend on a canary scenario must
        reproduce both digests byte-for-byte too (causal tracing demotes
        it to lockstep — the knob never widens eligibility)."""
        from dataclasses import replace

        twin = tuple(replace(s, parallel_regions=2,
                             parallel_backend="process") for s in SMALL)
        report = compare(golden, capture(twin))
        assert report["ok"]
        assert report["scenarios"]["small-tpcc"]["status"] == "exact"

    def test_legacy_golden_without_wire_digest_still_exact(self, golden):
        entry = dict(golden["scenarios"]["small-tpcc"])
        entry.pop("wire_digest")
        legacy = {"schema": CANARY_SCHEMA, "code_version": "old",
                  "scenarios": {"small-tpcc": entry}}
        report = compare(legacy, golden)
        assert report["scenarios"]["small-tpcc"]["status"] == "exact"

    def test_wire_mismatch_blocks_exact_match(self, golden):
        entry = dict(golden["scenarios"]["small-tpcc"])
        entry["wire_digest"] = "0" * 64
        candidate = {"schema": CANARY_SCHEMA, "code_version": "x",
                     "scenarios": {"small-tpcc": entry}}
        report = compare(golden, candidate)
        entry_report = report["scenarios"]["small-tpcc"]
        assert entry_report["status"] != "exact"
        assert entry_report["wire_digest"]["candidate"] == "0" * 64
