"""Statistical + replay tests for the open-loop arrival generators.

Distributional checks run against *seeded* generators, so they either pass
forever or fail forever — the significance level only calibrates how sharp
a distributional bug must be to trip them.  The KS acceptance uses the
asymptotic critical value ``D < c(alpha) / sqrt(n)`` with ``c(0.01) =
1.63``.
"""

import json
import math
import random
import subprocess
import sys

from repro.workloads.arrivals import ArrivalStream
from repro.workloads.zipf import ZipfGenerator


def _arrivals(stream: ArrivalStream, n: int):
    t, out = 0.0, []
    for _ in range(n):
        t = stream.next_after(t)
        out.append(t)
    return out


def _ks_vs_exponential(gaps, rate: float) -> float:
    """Two-sided KS statistic of ``gaps`` against Exponential(rate)."""
    xs = sorted(gaps)
    n = len(xs)
    d = 0.0
    for i, x in enumerate(xs):
        f = 1.0 - math.exp(-rate * x)
        d = max(d, f - i / n, (i + 1) / n - f)
    return d


def _slope(xs, ys) -> float:
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den


class TestPoissonArrivals:
    def test_interarrivals_pass_ks_against_exponential(self):
        rate = 2.0
        stream = ArrivalStream(rate, random.Random(42))
        times = _arrivals(stream, 4000)
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        d = _ks_vs_exponential(gaps, rate)
        assert d < 1.63 / math.sqrt(len(gaps)), d

    def test_seeded_stream_replays_exactly(self):
        a = _arrivals(ArrivalStream(1.5, random.Random(7), model="mmpp"), 500)
        b = _arrivals(ArrivalStream(1.5, random.Random(7), model="mmpp"), 500)
        assert a == b

    def test_strictly_increasing_under_all_modulations(self):
        stream = ArrivalStream(
            1.0, random.Random(3), model="mmpp", burst_mult=6.0,
            diurnal_period_ms=300.0, flash_at_ms=200.0,
            flash_duration_ms=100.0, flash_mult=4.0)
        times = _arrivals(stream, 2000)
        assert all(b > a for a, b in zip(times, times[1:]))


class TestModulatedArrivals:
    def test_mmpp_long_run_rate_is_normalized(self):
        """burst_mult changes burstiness, not the mean rate (state factors
        are normalized), so offered load stays comparable across models."""
        rate = 2.0
        stream = ArrivalStream(rate, random.Random(11), model="mmpp",
                               burst_mult=8.0)
        times = _arrivals(stream, 20000)
        measured = len(times) / times[-1]
        assert abs(measured - rate) / rate < 0.10, measured

    def test_flash_window_concentrates_arrivals(self):
        stream = ArrivalStream(1.0, random.Random(5), flash_at_ms=500.0,
                               flash_duration_ms=200.0, flash_mult=5.0)
        times = _arrivals(stream, 4000)
        inside = sum(1 for t in times if 500.0 <= t < 700.0)
        before = sum(1 for t in times if 300.0 <= t < 500.0)
        # 5x the rate over an equal-length window; 3x is far outside noise.
        assert inside > 3 * before, (inside, before)

    def test_diurnal_trough_thins_the_trough_phase(self):
        period = 400.0
        stream = ArrivalStream(2.0, random.Random(9), diurnal_period_ms=period,
                               diurnal_trough=0.2)
        times = _arrivals(stream, 8000)
        # Phase 0 is the trough, phase 0.5 the peak (raised cosine).
        trough = peak = 0
        for t in times:
            phase = (t % period) / period
            if phase < 0.25 or phase >= 0.75:
                trough += 1
            else:
                peak += 1
        assert peak > 1.5 * trough, (peak, trough)


class TestZipfPopularity:
    def test_frequency_rank_slope_matches_theta(self):
        """log(freq) vs log(rank) of the sampled user ids is a line of
        slope ~ -theta (the zipf exponent) over the popular head."""
        theta = 0.9
        gen = ZipfGenerator(2000, theta, random.Random(5))
        sample = gen.sampler()
        counts = {}
        for _ in range(150_000):
            uid = sample()
            counts[uid] = counts.get(uid, 0) + 1
        head = sorted(counts.values(), reverse=True)[:40]
        xs = [math.log(rank + 1) for rank in range(len(head))]
        ys = [math.log(freq) for freq in head]
        slope = _slope(xs, ys)
        assert abs(slope + theta) < 0.15, slope


_REPLAY_SCRIPT = """
from repro.bench.harness import run_trial
from repro.fleet.spec import TrialSpec, canonical_json

spec = TrialSpec(
    system="dast", workload="ycsb",
    workload_params={"theta": 0.7, "crt_ratio": 0.0,
                     "read_ratio": 0.95, "ops_per_txn": 2},
    replication=1, clients_per_region=4,
    duration_ms=500.0, warmup_ms=50.0, cooldown_ms=50.0, seed=1,
    open_loop={"users_per_region": 1500, "txn_per_user_s": 4.0},
)
res = run_trial(spec.to_trial())
print(canonical_json({"row": res.summary.as_row(),
                      "committed": res.summary.committed}))
"""


class TestCrossProcessReplay:
    def test_two_processes_produce_byte_identical_output(self):
        """The whole open-loop pipeline (arrivals, zipf users, pooled txn
        generation, express execution, recorder) replays exactly across
        process boundaries."""
        outs = []
        for _ in range(2):
            proc = subprocess.run([sys.executable, "-c", _REPLAY_SCRIPT],
                                  capture_output=True, text=True, check=True)
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        payload = json.loads(outs[0])
        assert payload["committed"] > 500, payload
        assert payload["row"]["open_loop"] is True
