"""TrialSpec serialization, fingerprints, and cache correctness."""

import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.fleet import ResultCache, TrialOutcome, TrialSpec, code_version
from repro.fleet.spec import canonical_json


def small_spec(**overrides) -> TrialSpec:
    base = dict(
        system="dast", workload="tpca", workload_params={"crt_ratio": 0.2},
        num_regions=2, shards_per_region=1, clients_per_region=2,
        duration_ms=1200.0, warmup_ms=300.0, cooldown_ms=100.0, seed=3,
    )
    base.update(overrides)
    return TrialSpec(**base)


def outcome_for(spec: TrialSpec, **overrides) -> TrialOutcome:
    base = dict(
        fingerprint=spec.fingerprint(), label=spec.display_label(),
        row={"throughput_tps": 10.0}, committed=7, aborted=1,
        wall_clock_s=0.5, peak_rss_kb=1000,
    )
    base.update(overrides)
    return TrialOutcome(**base)


class TestSpecRoundTrip:
    def test_json_round_trip_preserves_fingerprint(self):
        spec = small_spec(timing={"intra_region_rtt": 4.0}, hook="rtt_jitter",
                          hook_params={"jitter": 5.0}, label="x")
        again = TrialSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="unknown TrialSpec fields"):
            TrialSpec.from_dict({"system": "dast", "bogus": 1})

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ConfigError, match="unknown system"):
            small_spec(system="spanner").validate()
        with pytest.raises(ConfigError, match="unknown workload"):
            small_spec(workload="voter").validate()
        with pytest.raises(ConfigError, match="unknown hook"):
            small_spec(hook="nope").validate()
        with pytest.raises(ConfigError, match="unknown timing"):
            small_spec(timing={"warp_speed": 1}).validate()

    def test_to_trial_builds_runnable_trial(self):
        trial = small_spec().to_trial()
        assert trial.system == "dast"
        assert trial.num_regions == 2 and trial.seed == 3


class TestFingerprint:
    def test_every_content_field_moves_the_hash(self):
        """Any timing/topology/seed/workload change must address a different
        cache entry; ``label`` is display-only and must not."""
        base = small_spec()
        changed = {
            "system": "janus",
            "workload": "tpcc",
            "workload_params": {"crt_ratio": 0.4},
            "num_regions": 3,
            "shards_per_region": 2,
            "replication": 5,
            "clients_per_region": 4,
            "duration_ms": 2400.0,
            "warmup_ms": 600.0,
            "cooldown_ms": 200.0,
            "seed": 4,
            "clock_skew": 1.0,
            "variant": {"stretch": False},
            "timing": {"cross_region_rtt": 80.0},
            "request_timeout": 5000.0,
            "batch_window": 1.25,
            "hook": "rtt_jitter",
            "hook_params": {"jitter": 10.0},
            "collect": {"crt_cdf": {"points": 10}},
            "open_loop": {"users_per_region": 100, "txn_per_user_s": 2.0},
            "parallel_regions": 3,
            "parallel_backend": "process",
            "topology": {"events": [{"time": 100.0, "kind": "move_shard",
                                     "args": {"shard": "s0", "dst": "r1"}}]},
            "rtt_profile": "aws-like",
            "service_multipliers": "edge-tiers",
            "spare_regions": 1,
        }
        content_fields = {f.name for f in dataclasses.fields(TrialSpec)} - {"label"}
        assert set(changed) == content_fields
        for field, value in changed.items():
            mutated = small_spec(**{field: value})
            assert mutated.fingerprint() != base.fingerprint(), field

    def test_label_excluded_from_fingerprint(self):
        assert small_spec(label="a").fingerprint() == small_spec(label="b").fingerprint()

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestOutcome:
    def test_deterministic_blob_excludes_provenance(self):
        spec = small_spec()
        fast = outcome_for(spec, wall_clock_s=0.1, peak_rss_kb=10, cached=False)
        slow = outcome_for(spec, wall_clock_s=9.9, peak_rss_kb=99, cached=True)
        assert fast.deterministic_blob() == slow.deterministic_blob()

    def test_round_trip(self):
        outcome = outcome_for(small_spec())
        again = TrialOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
        assert again.deterministic_blob() == outcome.deterministic_blob()


class TestResultCache:
    def test_miss_then_hit_with_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec()
        assert cache.get(spec) is None
        cache.put(spec, outcome_for(spec))
        hit = cache.get(spec)
        assert hit is not None and hit.cached is True
        assert hit.row == {"throughput_tps": 10.0}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_different_seed_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec()
        cache.put(spec, outcome_for(spec))
        assert cache.get(small_spec(seed=99)) is None
        assert cache.stats()["misses"] == 1

    def test_stale_code_version_ignored(self, tmp_path):
        """An entry produced by different code must never be served."""
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec()
        path = cache.put(spec, outcome_for(spec))
        entry = json.loads(open(path).read())
        assert entry["code_version"] == code_version()
        entry["code_version"] = "0" * 16
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert cache.get(spec) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec()
        path = cache.put(spec, outcome_for(spec))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_fingerprint_mismatch_inside_entry_is_a_miss(self, tmp_path):
        """A manually copied/renamed file must not be served for the wrong
        spec."""
        cache = ResultCache(str(tmp_path / "c"))
        spec, other = small_spec(), small_spec(seed=42)
        cache.put(spec, outcome_for(spec))
        import shutil

        shutil.copy(cache.path_for(spec), cache.path_for(other))
        assert cache.get(other) is None
