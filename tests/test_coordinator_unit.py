"""Unit tests for coordinator bookkeeping (phase accounting, ack logic)."""

import pytest

from repro.clock.hlc import Timestamp
from repro.core.coordinator import CoordState
from repro.txn.model import Transaction
from tests.conftest import kv_set, make_dast, submit_and_run


def crt():
    return Transaction("crt", [kv_set(0, 0, 1), kv_set(1, 0, 2, piece_index=1)])


def ts(t, frac=0, nid=0):
    return Timestamp(float(t), frac, nid)


class TestCoordState:
    def test_all_prepared_needs_quorum_per_shard(self):
        state = CoordState(crt(), "client", is_crt=True)
        quorum = lambda s: 2
        state.acks["s0"] = {"a", "b"}
        state.acks["s1"] = {"x"}
        assert not state.all_prepared(quorum)
        state.acks["s1"].add("y")
        assert state.all_prepared(quorum)

    def test_all_executed_needs_every_shard(self):
        state = CoordState(crt(), "client", is_crt=True)
        state.exec_done["s0"] = {"phases": (0, 0, 0, 0)}
        assert not state.all_executed()
        state.exec_done["s1"] = {"phases": (0, 0, 0, 0)}
        assert state.all_executed()


class TestAckCollection:
    @pytest.fixture
    def node(self):
        system = make_dast(regions=2, spr=1)
        system.start()
        system.run(until=100.0)
        return system, system.nodes["r0.n0"]

    def test_anticipations_keep_region_maximum(self, node):
        _system, coordinator = node
        txn = crt()
        state = CoordState(txn, "c", is_crt=True)
        txn.participating_regions = ("r0", "r1")
        state.prepared_event = coordinator.sim.event()
        coordinator._record_ack(state, "r1.n0", shard="s1",
                                anticipated=ts(500), region="r1")
        coordinator._record_ack(state, "r1.n1", shard="s1",
                                anticipated=ts(480), region="r1")
        assert state.anticipated["r1"] == ts(500)  # max, not last

    def test_prepared_fires_only_with_all_regions_anticipated(self, node):
        _system, coordinator = node
        txn = crt()
        state = CoordState(txn, "c", is_crt=True)
        txn.participating_regions = ("r0", "r1")
        state.prepared_event = coordinator.sim.event()
        for replica in ("r1.n0", "r1.n1"):
            coordinator._record_ack(state, replica, shard="s1",
                                    anticipated=ts(500), region="r1")
        # s1 has quorum but s0 has none and r0 has no anticipation yet.
        assert not state.prepared_event.triggered
        for replica in ("r0.n0", "r0.n1"):
            coordinator._record_ack(state, replica, shard="s0",
                                    anticipated=ts(510), region="r0")
        assert state.prepared_event.triggered

    def test_ack_without_resolvable_shard_ignored(self, node):
        _system, coordinator = node
        txn = crt()
        state = CoordState(txn, "c", is_crt=True)
        state.prepared_event = coordinator.sim.event()
        coordinator._record_ack(state, "ghost.node", shard=None)
        assert all(not members for members in state.acks.values())


class TestPhaseAccounting:
    def test_crt_phases_sum_to_total_latency(self):
        system = make_dast(regions=2, spr=1)
        system.start()
        result = submit_and_run(system, crt())
        phases = result.phases
        accounted = (
            phases["local_prepare"] + phases["remote_prepare"]
            + phases["wait_exec"] + phases["wait_input"] + phases["wait_output"]
        )
        # t_replied - t_submit equals the phase sum (client hops excluded).
        assert accounted == pytest.approx(
            phases["local_prepare"] + phases["remote_prepare"]
            + (phases["wait_exec"] + phases["wait_input"] + phases["wait_output"]),
        )
        assert phases["remote_prepare"] >= 95.0
        assert phases["has_dep"] == 0.0

    def test_irt_has_no_remote_prepare_cost(self):
        system = make_dast(regions=1, spr=1)
        system.start()
        result = submit_and_run(system, Transaction("w", [kv_set(0, 0, 1)]))
        assert result.phases["remote_prepare"] < 10.0
