"""Tests for the workload generators (zipf, TPC-A, TPC-C mix)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Topology, TopologyConfig
from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.tpca import ACCOUNTS_PER_SHARD, TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload
from repro.workloads.zipf import ZipfGenerator


def topology(regions=2, spr=2, clients=4, seed=1):
    return Topology(TopologyConfig(
        num_regions=regions, shards_per_region=spr, clients_per_region=clients, seed=seed,
    ))


class TestZipf:
    def test_bounds(self):
        gen = ZipfGenerator(100, 0.9, random.Random(1))
        samples = [gen.sample() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigError):
            ZipfGenerator(0, 0.5)

    def test_theta_zero_is_uniform(self):
        gen = ZipfGenerator(10, 0.0, random.Random(2))
        counts = [0] * 10
        for _ in range(5000):
            counts[gen.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_higher_theta_more_skewed(self):
        def head_mass(theta):
            gen = ZipfGenerator(100, theta, random.Random(3))
            samples = [gen.sample() for _ in range(5000)]
            return sum(1 for s in samples if s < 5) / len(samples)

        assert head_mass(0.99) > head_mass(0.5) > head_mass(0.0)

    def test_deterministic_given_seed(self):
        a = ZipfGenerator(50, 0.8, random.Random(9))
        b = ZipfGenerator(50, 0.8, random.Random(9))
        assert [a.sample() for _ in range(100)] == [b.sample() for _ in range(100)]

    @given(st.integers(1, 200), st.floats(0.0, 0.999))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_in_range(self, n, theta):
        gen = ZipfGenerator(n, theta, random.Random(4))
        for _ in range(50):
            assert 0 <= gen.sample() < n


class TestClientBinding:
    def test_clients_round_robin_over_region_shards(self):
        topo = topology(regions=2, spr=2, clients=4)
        wl = TpcaWorkload(topo)
        bindings = wl.bind_clients()
        assert len(bindings) == 8
        r0 = [b for b in bindings if b.region == "r0"]
        assert sorted({b.home_shard for b in r0}) == ["s0", "s1"]
        for b in bindings:
            assert topo.region_of_shard(b.home_shard) == b.region

    def test_remote_shard_index_is_cross_region(self):
        topo = topology(regions=3, spr=2)
        wl = TpcaWorkload(topo)
        binding = wl.bind_clients()[0]
        rng = random.Random(5)
        for _ in range(50):
            idx = wl.remote_shard_index(binding, rng)
            assert idx // 2 != binding.home_shard_index // 2

    def test_remote_shard_none_for_single_region(self):
        topo = topology(regions=1, spr=2)
        wl = TpcaWorkload(topo)
        binding = wl.bind_clients()[0]
        assert wl.remote_shard_index(binding, random.Random(1)) is None

    def test_local_other_shard_is_same_region(self):
        topo = topology(regions=2, spr=3)
        wl = TpcaWorkload(topo)
        binding = wl.bind_clients()[0]
        rng = random.Random(5)
        for _ in range(20):
            idx = wl.local_other_shard_index(binding, rng)
            assert idx != binding.home_shard_index
            assert idx // 3 == binding.home_shard_index // 3


class TestTpca:
    def test_crt_ratio_controls_transfers(self):
        topo = topology(regions=3)
        wl = TpcaWorkload(topo, crt_ratio=0.5)
        binding = wl.bind_clients()[0]
        rng = random.Random(7)
        kinds = [wl.next_transaction(binding, rng).txn_type for _ in range(600)]
        transfers = kinds.count("tpca_transfer")
        assert 0.35 < transfers / len(kinds) < 0.65

    def test_local_txn_is_single_shard(self):
        topo = topology()
        wl = TpcaWorkload(topo, crt_ratio=0.0)
        binding = wl.bind_clients()[0]
        txn = wl.next_transaction(binding, random.Random(1))
        assert txn.shard_ids == (binding.home_shard,)
        assert not txn.has_value_dependency()

    def test_lock_keys_present(self):
        topo = topology()
        wl = TpcaWorkload(topo, crt_ratio=0.0)
        txn = wl.next_transaction(wl.bind_clients()[0], random.Random(1))
        keys = txn.lock_keys_on(binding_shard := txn.shard_ids[0])
        assert any(k[0] == "account" for k in keys)


class TestTpccMix:
    def test_mix_matches_weights(self):
        topo = topology(regions=2)
        wl = TpccWorkload(topo)
        binding = wl.bind_clients()[0]
        rng = random.Random(11)
        counts = {}
        n = 4000
        for _ in range(n):
            txn = wl.next_transaction(binding, rng)
            counts[txn.txn_type] = counts.get(txn.txn_type, 0) + 1
        assert 0.40 < counts["new_order"] / n < 0.48
        assert 0.40 < counts["payment"] / n < 0.48
        for kind in ("order_status", "delivery", "stock_level"):
            assert 0.02 < counts[kind] / n < 0.07

    def test_read_only_types_stay_home(self):
        topo = topology(regions=3)
        wl = TpccWorkload(topo)
        binding = wl.bind_clients()[0]
        rng = random.Random(13)
        for _ in range(800):
            txn = wl.next_transaction(binding, rng)
            if txn.txn_type in ("order_status", "delivery", "stock_level"):
                assert txn.shard_ids == (binding.home_shard,)

    def test_payment_remote_probability(self):
        topo = topology(regions=4, spr=1)
        wl = TpccWorkload(topo, remote_payment_prob=0.5)
        binding = wl.bind_clients()[0]
        rng = random.Random(17)
        payments = []
        while len(payments) < 400:
            txn = wl.next_transaction(binding, rng)
            if txn.txn_type == "payment":
                payments.append(len(txn.shard_ids) > 1)
        ratio = sum(payments) / len(payments)
        assert 0.35 < ratio < 0.65

    def test_payment_only_crt_ratio(self):
        topo = topology(regions=3, spr=2)
        wl = PaymentOnlyWorkload(topo, crt_ratio=0.4)
        binding = wl.bind_clients()[0]
        rng = random.Random(19)
        crts = 0
        n = 800
        for _ in range(n):
            txn = wl.next_transaction(binding, rng)
            assert txn.txn_type == "payment"
            regions = {topo.region_of_shard(s) for s in txn.shard_ids}
            if regions != {binding.region}:
                crts += 1
        assert 0.3 < crts / n < 0.5

    def test_payment_by_name_has_value_dependency(self):
        topo = topology(regions=2, spr=1)
        wl = PaymentOnlyWorkload(topo, crt_ratio=1.0, by_name_prob=1.0)
        binding = wl.bind_clients()[0]
        txn = wl.next_transaction(binding, random.Random(23))
        assert len(txn.shard_ids) == 2
        assert txn.has_value_dependency()

    def test_invalid_item_probability(self):
        topo = topology(regions=1, spr=1)
        wl = TpccWorkload(topo, invalid_item_prob=0.5)
        binding = wl.bind_clients()[0]
        rng = random.Random(29)
        invalid = 0
        orders = 0
        from repro.workloads.tpcc.schema import ITEMS
        for _ in range(2000):
            txn = wl.next_transaction(binding, rng)
            if txn.txn_type != "new_order":
                continue
            orders += 1
            if any(i >= ITEMS for i, _sw, _q in txn.params["lines"]):
                invalid += 1
        assert 0.35 < invalid / orders < 0.65

    def test_abstract_workload_hooks_raise(self):
        topo = topology()
        wl = Workload(topo)
        with pytest.raises(NotImplementedError):
            wl.schemas()
        with pytest.raises(NotImplementedError):
            wl.load(None, 0)
        with pytest.raises(NotImplementedError):
            wl.next_transaction(None, random.Random(1))


class TestYcsb:
    def _binding(self, wl):
        return wl.bind_clients()[0]

    def test_local_txn_single_shard(self):
        from repro.workloads.ycsb import YcsbWorkload
        topo = topology(regions=2)
        wl = YcsbWorkload(topo, crt_ratio=0.0)
        txn = wl.next_transaction(self._binding(wl), random.Random(1))
        assert txn.shard_ids == (self._binding(wl).home_shard,)

    def test_crt_ratio_controls_cross_region(self):
        from repro.workloads.ycsb import YcsbWorkload
        topo = topology(regions=3)
        wl = YcsbWorkload(topo, crt_ratio=0.5)
        binding = self._binding(wl)
        rng = random.Random(2)
        crts = sum(
            1 for _ in range(400)
            if wl.next_transaction(binding, rng).txn_type == "ycsb_crt"
        )
        assert 0.35 < crts / 400 < 0.65

    def test_read_ratio_controls_write_locks(self):
        from repro.workloads.ycsb import YcsbWorkload
        topo = topology(regions=1)
        rng = random.Random(3)
        wl_reads = YcsbWorkload(topo, read_ratio=1.0, crt_ratio=0.0)
        txn = wl_reads.next_transaction(self._binding(wl_reads), rng)
        assert txn.lock_keys_on(txn.shard_ids[0]) == frozenset()
        wl_writes = YcsbWorkload(topo, read_ratio=0.0, crt_ratio=0.0)
        txn = wl_writes.next_transaction(self._binding(wl_writes), rng)
        assert len(txn.lock_keys_on(txn.shard_ids[0])) >= 1

    def test_runs_on_dast_and_stays_consistent(self):
        from repro.workloads.ycsb import YcsbWorkload
        from repro.core.system import DastSystem
        from repro.workloads.client import spawn_clients
        from repro.bench.metrics import LatencyRecorder

        topo = topology(regions=2, spr=1, clients=3)
        wl = YcsbWorkload(topo, theta=0.9, crt_ratio=0.2)
        system = DastSystem(topo, wl.schemas(), wl.load, seed=1)
        rec = LatencyRecorder()
        system.start()
        clients = spawn_clients(system, wl, rec.record)
        system.run(until=3000.0)
        for c in clients:
            c.stop()
        system.run(until=6000.0)
        assert len(rec.results) > 50
        assert all(r.committed for r in rec.results)
        for shard in topo.all_shards():
            assert len(set(system.replicas_digest(shard))) == 1

    def test_reads_returned_to_client(self):
        from repro.workloads.ycsb import YcsbWorkload
        from tests.conftest import submit_and_run
        from repro.core.system import DastSystem

        topo = topology(regions=1, spr=1, clients=1)
        wl = YcsbWorkload(topo, read_ratio=1.0, crt_ratio=0.0)
        system = DastSystem(topo, wl.schemas(), wl.load, seed=1)
        system.start()
        txn = wl.next_transaction(wl.bind_clients()[0], random.Random(5))
        result = submit_and_run(system, txn)
        reads = result.outputs["reads_0"]
        assert len(reads) >= 1 and all(v == 0 for v in reads.values())
