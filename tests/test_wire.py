"""Tests for the typed wire schema layer: registry, codec, size model."""

import pytest

from repro.txn.model import Transaction
from repro.wire.messages import CrtAck, PctReport, Submit
from repro.wire.schema import (
    Encoded,
    WireError,
    WireMessage,
    decode,
    encode,
    message,
    registered_messages,
    schema_for,
    sizeof,
)
from tests.conftest import kv_set


class TestRegistry:
    def test_known_messages_registered(self):
        registry = registered_messages()
        for name in ("submit", "pct_report", "crt_commit", "slog_log",
                     "tapir_commit", "janus_preaccept"):
            assert name in registry

    def test_schema_for_unknown_returns_none(self):
        assert schema_for("no_such_message") is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(WireError):
            @message("pct_report")
            class Dup(WireMessage):
                value: int

    def test_batchable_flags(self):
        assert schema_for("pct_report").BATCHABLE
        assert schema_for("crt_executed").BATCHABLE
        assert not schema_for("submit").BATCHABLE
        assert not schema_for("prep_remote").BATCHABLE


class TestCodec:
    def test_round_trip(self):
        txn = Transaction("w", [kv_set(0, 1, 1)])
        frame = encode(Submit(txn=txn))
        assert isinstance(frame, Encoded)
        assert frame.name == "submit" and frame.version == 1
        msg = decode(frame)
        assert isinstance(msg, Submit)
        assert msg.txn is txn

    def test_unknown_name_raises_named_error(self):
        frame = Encoded("ghost_msg", 1, {}, 10)
        with pytest.raises(WireError) as exc:
            decode(frame)
        assert exc.value.message_name == "ghost_msg"
        assert "ghost_msg" in str(exc.value)

    def test_version_mismatch_raises(self):
        frame = encode(PctReport(value=3))
        bad = Encoded(frame.name, frame.version + 1, frame.fields, frame.size)
        with pytest.raises(WireError) as exc:
            decode(bad)
        assert exc.value.message_name == "pct_report"
        assert "version" in exc.value.reason

    def test_missing_required_field_raises(self):
        bad = Encoded("pct_report", 1, {}, 10)
        with pytest.raises(WireError) as exc:
            decode(bad)
        assert "missing" in exc.value.reason

    def test_unexpected_field_raises(self):
        bad = Encoded("pct_report", 1, {"value": 1, "bogus": 2}, 10)
        with pytest.raises(WireError) as exc:
            decode(bad)
        assert "bogus" in exc.value.reason

    def test_optional_fields_may_be_omitted(self):
        # slog_global_submit's seq defaults to None (stamped by the orderer).
        frame = Encoded("slog_global_submit",
                        1, {"txn": None, "coord": "r0.n0"}, 10)
        msg = decode(frame)
        assert msg.seq is None

    def test_encode_unregistered_type_rejected(self):
        class Rogue(WireMessage):
            pass

        with pytest.raises(WireError):
            encode(Rogue())


class TestMappingAdapter:
    def test_getitem_and_get(self):
        msg = CrtAck(txn_id="t1", node="r0.n0", shard="s0",
                     anticipated_ts=None, region="r0")
        assert msg["txn_id"] == "t1"
        assert msg.get("shard") == "s0"
        assert msg.get("absent", 7) == 7
        assert "node" in msg
        with pytest.raises(KeyError):
            msg["absent"]


class TestSizeModel:
    def test_scalar_sizes(self):
        assert sizeof(None) == 1
        assert sizeof(True) == 1
        assert sizeof(7) == 8
        assert sizeof(3.5) == 8
        assert sizeof("abcd") == 4 + 4

    def test_container_sizes(self):
        assert sizeof([1, 2]) == 4 + 16
        assert sizeof({"a": 1}) == 4 + (4 + 1) + 8

    def test_sizes_are_deterministic(self):
        m1 = PctReport(value=123)
        m2 = PctReport(value=123)
        assert encode(m1).size == encode(m2).size > 0

    def test_transaction_delegates_wire_size(self):
        txn = Transaction("w", [kv_set(0, 1, 1)])
        assert sizeof(txn) == txn.wire_size()
        # Cached: repeated calls agree.
        assert txn.wire_size() == txn.wire_size()

    def test_larger_message_is_larger(self):
        small = encode(PctReport(value=1))
        big = encode(Submit(txn=Transaction("w", [kv_set(0, 1, 1)])))
        assert big.size > small.size
