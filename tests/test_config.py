"""Tests for topology and timing configuration."""

import pytest

from repro.config import TimingConfig, Topology, TopologyConfig
from repro.errors import ConfigError


class TestTimingConfig:
    def test_defaults_match_paper(self):
        timing = TimingConfig()
        assert timing.intra_region_rtt == 5.0
        assert timing.cross_region_rtt == 100.0
        assert timing.slog_batch_interval == 5.0
        timing.validate()

    def test_rejects_inverted_rtts(self):
        with pytest.raises(ConfigError):
            TimingConfig(intra_region_rtt=200.0, cross_region_rtt=100.0).validate()

    def test_rejects_nonpositive_rtt(self):
        with pytest.raises(ConfigError):
            TimingConfig(intra_region_rtt=0.0).validate()

    def test_rejects_bad_pct_interval(self):
        with pytest.raises(ConfigError):
            TimingConfig(pct_interval=0.0).validate()


class TestTopologyConfig:
    def test_even_replication_rejected(self):
        with pytest.raises(ConfigError):
            Topology(TopologyConfig(replication=2))

    def test_zero_regions_rejected(self):
        with pytest.raises(ConfigError):
            Topology(TopologyConfig(num_regions=0))

    def test_negative_clients_rejected(self):
        with pytest.raises(ConfigError):
            Topology(TopologyConfig(clients_per_region=-1))


class TestTopology:
    @pytest.fixture
    def topo(self):
        return Topology(TopologyConfig(
            num_regions=3, shards_per_region=2, replication=3, clients_per_region=4,
        ))

    def test_region_names(self, topo):
        assert topo.regions == ["r0", "r1", "r2"]

    def test_shard_placement(self, topo):
        assert topo.num_shards == 6
        assert topo.region_of_shard("s0") == "r0"
        assert topo.region_of_shard("s3") == "r1"
        assert topo.shards_in_region("r2") == ["s4", "s5"]

    def test_one_node_per_replica(self, topo):
        nodes = topo.nodes_in_region("r0")
        assert len(nodes) == 6  # 2 shards x 3 replicas
        for shard in topo.shards_in_region("r0"):
            assert len(topo.replicas_of(shard)) == 3

    def test_node_to_shard_mapping_consistent(self, topo):
        for shard in topo.all_shards():
            for node in topo.replicas_of(shard):
                assert topo.shard_of_node(node) == shard
                assert topo.region_of_node(node) == topo.region_of_shard(shard)

    def test_shard_index_roundtrip(self, topo):
        for i in range(topo.num_shards):
            assert topo.shard_index(topo.shard_name(i)) == i

    def test_manager_names(self, topo):
        assert topo.manager_of("r1") == "r1.mgr"
        assert topo.manager_backup_of("r1") == "r1.mgrb0"

    def test_clients(self, topo):
        assert len(topo.all_clients()) == 12
        assert topo.clients_in_region("r0") == ["r0.c0", "r0.c1", "r0.c2", "r0.c3"]

    def test_unknown_shard_raises(self, topo):
        with pytest.raises(ConfigError):
            topo.region_of_shard("s99")
