"""Tests for phase-span assembly: spans must telescope to client latency."""

import pytest

from repro.obs.spans import (CRT_PHASES, IRT_PHASES, PhaseSpan, assemble_spans,
                             phase_breakdown)
from repro.sim.trace import Tracer
from repro.txn.model import Transaction
from tests.conftest import kv_set, make_dast, submit_and_run


def span_for(system, tracer, txn):
    """Submit, run to completion, and return (span, observed_latency_ms)."""
    t0 = system.sim.now
    reply_at = []
    region = system.topology.regions[0]
    client = f"{region}.c0"
    node = system.topology.nodes_in_region(region)[0]
    event = system.submit(client, node, txn, timeout=60000.0)
    event.add_callback(lambda e: reply_at.append(system.sim.now))
    deadline = system.sim.now + 10000.0
    while not reply_at and system.sim.now < deadline:
        system.run(until=system.sim.now + 100.0)
    assert reply_at, "transaction did not complete"
    spans = assemble_spans(tracer, txn=txn.txn_id)
    assert len(spans) == 1
    return spans[0], reply_at[0] - t0


class TestCrtSpans:
    def test_two_region_crt_phases_sum_to_client_latency(self):
        system = make_dast(regions=2, spr=1)
        tracer = system.attach_tracer()
        system.start()
        crt = Transaction("crt", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        span, latency = span_for(system, tracer, crt)
        assert span.is_crt
        # Full 2DA layout observed.
        assert list(span.phases) == [name for name, _ in CRT_PHASES[1:]]
        # The defining invariant: phases telescope to the client latency.
        assert sum(span.phases.values()) == pytest.approx(span.total)
        assert span.total == pytest.approx(latency, rel=0.01)
        assert span.retries == 0
        # Anticipation and order-wait dominate a cross-region commit.
        assert span.phases["anticipate"] > 0
        assert span.phases["ready"] > 0

    def test_crt_breakdown_rows(self):
        system = make_dast(regions=2, spr=1)
        tracer = system.attach_tracer()
        system.start()
        for i in range(3):
            txn = Transaction(f"crt{i}",
                              [kv_set(0, i, 1), kv_set(1, i, 2, piece_index=1)])
            submit_and_run(system, txn)
        rows = phase_breakdown(assemble_spans(tracer), crt=True)
        phases = [r["phase"] for r in rows]
        assert phases[-1] == "total"
        assert "anticipate" in phases and "ready" in phases
        total_row = rows[-1]
        assert total_row["count"] == 3
        mean_sum = sum(r["mean_ms"] for r in rows[:-1])
        assert mean_sum == pytest.approx(total_row["mean_ms"])


class TestIrtSpans:
    def test_irt_uses_irt_layout_and_telescopes(self):
        system = make_dast(regions=2, spr=1)
        tracer = system.attach_tracer()
        system.start()
        irt = Transaction("irt", [kv_set(0, 0, 42)])
        span, latency = span_for(system, tracer, irt)
        assert not span.is_crt
        assert list(span.phases) == [name for name, _ in IRT_PHASES[1:]]
        assert sum(span.phases.values()) == pytest.approx(span.total)
        assert span.total == pytest.approx(latency, rel=0.01)


class TestSyntheticSpans:
    def test_retry_counts_extra_submits(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(5.0, "c", "submit", txn="t1")   # client retry
        tracer.emit(6.0, "n", "irt_ts", txn="t1")
        tracer.emit(8.0, "n", "execute", txn="t1")
        tracer.emit(10.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert span.retries == 1
        assert span.start == 0.0 and span.end == 10.0
        assert sum(span.phases.values()) == pytest.approx(10.0)

    def test_degrades_without_interior_events(self):
        """Baselines only trace submit/reply: one phase spans the trip."""
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(30.0, "c", "reply", txn="t1", ok=True, crt=True)
        (span,) = assemble_spans(tracer)
        assert span.is_crt  # classification from the reply flag alone
        assert list(span.phases) == ["reply"]
        assert span.phases["reply"] == pytest.approx(30.0)

    def test_partial_layout_keeps_only_observed_phases(self):
        """SLOG/Janus trace only ``execute``: no zero-width phantom phases."""
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(20.0, "n", "execute", txn="t1")
        tracer.emit(25.0, "c", "reply", txn="t1", ok=True, crt=True)
        (span,) = assemble_spans(tracer)
        assert list(span.phases) == ["execute", "reply"]
        assert span.phases["execute"] == pytest.approx(20.0)
        assert span.phases["reply"] == pytest.approx(5.0)

    def test_in_flight_transactions_skipped(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(1.0, "n", "irt_ts", txn="t1")
        assert assemble_spans(tracer) == []

    def test_events_after_reply_ignored(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(4.0, "n", "irt_ts", txn="t1")
        tracer.emit(6.0, "n", "execute", txn="t1")
        tracer.emit(8.0, "c", "reply", txn="t1", ok=True, crt=False)
        tracer.emit(9.0, "n", "execute", txn="t1")  # lagging replica
        (span,) = assemble_spans(tracer)
        assert span.end == 8.0
        assert span.phases["execute"] == pytest.approx(2.0)  # 4.0 -> 6.0

    def test_boundaries_clamped_monotone(self):
        """An out-of-order event time cannot produce a negative phase."""
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(6.0, "n", "execute", txn="t1")
        tracer.emit(4.0, "n", "irt_ts", txn="t1")  # would invert without clamp
        tracer.emit(8.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert all(d >= 0 for d in span.phases.values())
        assert sum(span.phases.values()) == pytest.approx(span.total)

    def test_txn_filter(self):
        tracer = Tracer()
        for tid in ("a", "b"):
            tracer.emit(0.0, "c", "submit", txn=tid)
            tracer.emit(1.0, "c", "reply", txn=tid, ok=True, crt=False)
        assert len(assemble_spans(tracer)) == 2
        assert len(assemble_spans(tracer, txn="a")) == 1

    def test_breakdown_empty(self):
        assert phase_breakdown([]) == []


class TestPartialSpans:
    """Truncated transactions surface as explicit partial spans instead of
    silently vanishing from the summary."""

    def test_in_flight_txn_surfaces_as_partial(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(1.0, "n", "irt_ts", txn="t1")
        assert assemble_spans(tracer) == []  # default behaviour unchanged
        (span,) = assemble_spans(tracer, include_partial=True)
        assert span.partial
        assert span.start == 0.0 and span.end == 1.0

    def test_truncated_head_is_partial(self):
        """Tracer capacity evicted the submit: reply alone is partial."""
        tracer = Tracer()
        tracer.emit(5.0, "n", "execute", txn="t1")
        tracer.emit(8.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer, include_partial=True)
        assert span.partial and span.retries == 0

    def test_partial_excluded_from_breakdown(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="done")
        tracer.emit(4.0, "c", "reply", txn="done", ok=True, crt=False)
        tracer.emit(1.0, "c", "submit", txn="cut")
        spans = assemble_spans(tracer, include_partial=True)
        assert len(spans) == 2
        assert sum(1 for s in spans if s.partial) == 1
        rows = phase_breakdown(spans)
        assert rows[-1]["count"] == 1  # only the complete txn counted

    def test_complete_spans_not_marked_partial(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(3.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer, include_partial=True)
        assert not span.partial


class TestArrivalAnchoredSpans:
    """Open-loop spans: an ``arrival`` event anchors the span at the
    *intended* arrival instant and prepends a client-side ``queue`` phase."""

    def test_queue_phase_covers_intended_to_first_submit(self):
        tracer = Tracer()
        tracer.emit(5.0, "c", "arrival", txn="t1", intended=2.0, region="r0")
        tracer.emit(5.0, "c", "submit", txn="t1")
        tracer.emit(7.0, "n", "irt_ts", txn="t1")
        tracer.emit(9.0, "n", "execute", txn="t1")
        tracer.emit(11.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert not span.partial
        assert span.start == 2.0  # intended, not submit
        assert list(span.phases)[0] == "queue"
        assert span.phases["queue"] == pytest.approx(3.0)
        assert span.total == pytest.approx(9.0)
        assert sum(span.phases.values()) == pytest.approx(span.total)

    def test_immediate_launch_has_zero_width_queue(self):
        tracer = Tracer()
        tracer.emit(4.0, "c", "arrival", txn="t1", intended=4.0, region="r0")
        tracer.emit(4.0, "c", "submit", txn="t1")
        tracer.emit(9.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert span.start == 4.0
        assert span.phases["queue"] == pytest.approx(0.0)
        assert span.total == pytest.approx(5.0)

    def test_truncated_submit_with_arrival_is_still_complete(self):
        """The partial-counting fix: an arrival event is a valid start
        anchor, so losing the submit at tracer capacity no longer drops
        the span from the breakdown."""
        tracer = Tracer()
        tracer.emit(3.0, "c", "arrival", txn="t1", intended=1.0, region="r0")
        tracer.emit(6.0, "n", "execute", txn="t1")
        tracer.emit(8.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert not span.partial
        assert span.start == 1.0
        assert "queue" not in span.phases  # no submit to bound it
        assert sum(span.phases.values()) == pytest.approx(span.total)

    def test_arrival_only_txn_is_partial_anchored_at_intended(self):
        """Backlogged at trial end: launched but nothing more survived."""
        tracer = Tracer()
        tracer.emit(9.0, "c", "arrival", txn="t1", intended=2.0, region="r0")
        assert assemble_spans(tracer) == []
        (span,) = assemble_spans(tracer, include_partial=True)
        assert span.partial
        assert span.start == 2.0 and span.end == 9.0

    def test_closed_loop_spans_never_gain_a_queue_phase(self):
        tracer = Tracer()
        tracer.emit(0.0, "c", "submit", txn="t1")
        tracer.emit(6.0, "c", "reply", txn="t1", ok=True, crt=False)
        (span,) = assemble_spans(tracer)
        assert "queue" not in span.phases
        assert span.start == 0.0
