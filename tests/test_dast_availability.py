"""Availability claims of §3.1: cross-region partitions affect CRTs but
never IRTs; client crashes never hurt; f replica failures tolerated."""

import pytest

from repro.txn.model import Transaction
from tests.conftest import kv_set, make_dast, submit_and_run


class TestPartitionTolerance:
    def test_irts_unaffected_by_cross_region_partition(self, dast2):
        dast2.network.partition_regions("r0", "r1")
        dast2.run(until=dast2.sim.now + 200.0)
        for i in range(4):
            result = submit_and_run(dast2, Transaction("w", [kv_set(0, i, i)]))
            assert result.committed
        # And in the other region too.
        result = submit_and_run(
            dast2, Transaction("w", [kv_set(1, 0, 9)]), client="r1.c0", node="r1.n0",
        )
        assert result.committed

    def test_crts_stall_during_partition_and_recover_after(self, dast2):
        dast2.network.partition_regions("r0", "r1")
        txn = Transaction("crt", [kv_set(0, 5, 1), kv_set(1, 5, 2, piece_index=1)])
        results = []
        ev = dast2.submit("r0.c0", "r0.n0", txn, timeout=120000.0)
        ev.add_callback(lambda e: results.append(e.value))
        dast2.run(until=dast2.sim.now + 2000.0)
        assert not results  # blocked on the partition, not aborted
        dast2.network.heal_regions("r0", "r1")
        dast2.run(until=dast2.sim.now + 6000.0)
        assert results and results[0].committed  # retransmissions recovered

    def test_irt_latency_unchanged_during_partition(self, dast2):
        # Baseline IRT latency.
        base = Transaction("w", [kv_set(0, 1, 1)])
        submit_and_run(dast2, base)
        base_exec = dast2.nodes["r0.n0"].records[base.txn_id]
        base_latency = base_exec.t_executed - base_exec.t_prepared
        dast2.network.partition_regions("r0", "r1")
        dast2.run(until=dast2.sim.now + 100.0)
        during = Transaction("w", [kv_set(0, 2, 2)])
        submit_and_run(dast2, during)
        during_exec = dast2.nodes["r0.n0"].records[during.txn_id]
        during_latency = during_exec.t_executed - during_exec.t_prepared
        assert during_latency < base_latency + 20.0


class TestClientFailures:
    def test_transaction_completes_even_if_client_vanishes(self, dast2):
        """Availability on arbitrary client failures: the coordinator
        finishes the transaction regardless of the submitting client."""
        txn = Transaction("w", [kv_set(0, 3, 7)])
        dast2.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
        dast2.run(until=dast2.sim.now + 2.0)
        dast2.network.crash_host("r0.c0")  # client dies mid-flight
        dast2.run(until=dast2.sim.now + 2000.0)
        for host in dast2.catalog.replicas_of("s0"):
            assert dast2.nodes[host].shard.get("kv", ("s0-3",))["v"] == 7


class TestReplicaFailures:
    def test_f_failures_tolerated_per_shard(self):
        system = make_dast(regions=2, spr=1, replication=5)
        system.start()
        # f = 2 of 5 replicas may fail.
        system.crash_node("r0.n1")
        system.run(until=system.sim.now + 400.0)
        system.crash_node("r0.n3")
        system.run(until=system.sim.now + 400.0)
        result = submit_and_run(system, Transaction("w", [kv_set(0, 1, 42)]))
        assert result.committed
        crt = Transaction("crt", [kv_set(0, 2, 1), kv_set(1, 2, 2, piece_index=1)])
        assert submit_and_run(system, crt).committed

    def test_remote_replica_failure_does_not_block_crts(self, dast2):
        dast2.crash_node("r1.n2")
        dast2.run(until=dast2.sim.now + 400.0)
        crt = Transaction("crt", [kv_set(0, 4, 1), kv_set(1, 4, 2, piece_index=1)])
        result = submit_and_run(dast2, crt)
        assert result.committed
        for host in ("r1.n0", "r1.n1"):
            assert dast2.nodes[host].shard.get("kv", ("s1-4",))["v"] == 2
