"""Tests for virtual clock sources, hybrid timestamps, and the dclock."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock.hlc import Timestamp, ZERO_TS
from repro.clock.dclock import DClock
from repro.errors import ConfigError
from repro.sim.clocks import ClockSource
from repro.sim.kernel import Simulator


class TestClockSource:
    def test_tracks_sim_time(self):
        sim = Simulator()
        src = ClockSource(sim)
        sim.run(until=100.0)
        assert src.now() == pytest.approx(100.0)

    def test_offset(self):
        sim = Simulator()
        src = ClockSource(sim, offset=7.0)
        assert src.now() == pytest.approx(7.0)

    def test_drift(self):
        sim = Simulator()
        src = ClockSource(sim, drift=0.01)
        sim.run(until=1000.0)
        assert src.now() == pytest.approx(1010.0)

    def test_adjust_steps_reading(self):
        sim = Simulator()
        src = ClockSource(sim)
        sim.run(until=50.0)
        src.adjust(200.0)
        assert src.now() == pytest.approx(250.0)

    def test_set_drift_does_not_jump(self):
        sim = Simulator()
        src = ClockSource(sim, drift=0.0)
        sim.run(until=100.0)
        before = src.now()
        src.set_drift(0.1)
        assert src.now() == pytest.approx(before)
        sim.run(until=200.0)
        assert src.now() == pytest.approx(before + 110.0)

    def test_pathological_drift_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            ClockSource(sim, drift=-1.5)


class TestTimestamp:
    def test_lexicographic_order(self):
        assert Timestamp(1.0, 0, 0) < Timestamp(2.0, 0, 0)
        assert Timestamp(1.0, 0, 9) < Timestamp(1.0, 1, 0)
        assert Timestamp(1.0, 1, 0) < Timestamp(1.0, 1, 1)

    def test_stretched_sorts_before_future_time(self):
        # The Fig 1b scenario: 199.(1) orders before the anticipated 200.
        irt = Timestamp(199.0, 1, 3)
        crt = Timestamp(200.0, 0, 1)
        assert irt < crt

    def test_next_frac(self):
        ts = Timestamp(5.0, 2, 1)
        assert ts.next_frac(9) == Timestamp(5.0, 3, 9)
        assert ts < ts.next_frac(0) or ts.nid > 0

    def test_str_rendering(self):
        assert str(Timestamp(199.0, 1, 3)) == "199.000.(1)@3"
        assert str(Timestamp(10.0, 0, 2)) == "10.000@2"

    @given(
        st.tuples(st.floats(0, 1e6), st.integers(0, 100), st.integers(0, 64)),
        st.tuples(st.floats(0, 1e6), st.integers(0, 100), st.integers(0, 64)),
    )
    def test_total_order_matches_tuple_order(self, a, b):
        ta, tb = Timestamp(*a), Timestamp(*b)
        assert (ta < tb) == (tuple(ta) < tuple(tb))
        assert (ta == tb) == (tuple(ta) == tuple(tb))


class TestDClock:
    def make(self, floor_holder=None, nid=1):
        sim = Simulator()
        src = ClockSource(sim)
        holder = floor_holder if floor_holder is not None else [None]
        clock = DClock(src, nid=nid, floor_fn=lambda: holder[0])
        return sim, src, clock, holder

    def test_ticks_follow_physical_time(self):
        sim, _src, clock, _h = self.make()
        sim.run(until=10.0)
        ts = clock.tick()
        assert ts.time == pytest.approx(10.0)
        assert ts.frac == 0

    def test_ticks_strictly_monotonic_at_same_instant(self):
        _sim, _src, clock, _h = self.make()
        values = [clock.tick() for _ in range(20)]
        assert values == sorted(values)
        assert len(set(values)) == 20

    def test_freezes_below_floor(self):
        sim, _src, clock, holder = self.make()
        holder[0] = Timestamp(50.0, 0, 9)
        sim.run(until=100.0)
        for _ in range(5):
            ts = clock.tick()
            assert ts < holder[0]
            assert ts.time < 50.0
        assert clock.stretch_count == 5

    def test_freeze_parks_just_below_floor_time(self):
        sim, _src, clock, holder = self.make()
        clock.tick()
        holder[0] = Timestamp(50.0, 0, 9)
        sim.run(until=100.0)
        ts = clock.tick()
        # Frozen AT the floor, not at the stale pre-floor position.
        assert ts.time == pytest.approx(50.0)
        assert ts < holder[0]

    def test_resumes_physical_time_after_floor_lifts(self):
        sim, _src, clock, holder = self.make()
        holder[0] = Timestamp(50.0, 0, 9)
        sim.run(until=100.0)
        clock.tick()
        holder[0] = None
        ts = clock.tick()
        assert ts.time == pytest.approx(100.0)

    def test_observe_adopts_higher_peer_value(self):
        _sim, _src, clock, _h = self.make(nid=1)
        clock.observe(Timestamp(80.0, 5, 2))
        ts = clock.tick()
        assert ts > Timestamp(80.0, 5, 2)

    def test_observe_capped_by_floor(self):
        _sim, _src, clock, holder = self.make()
        holder[0] = Timestamp(50.0, 0, 9)
        clock.observe(Timestamp(60.0, 0, 2))  # at/after floor time: skipped
        assert clock.peek() < Timestamp(50.0, 0, -1000)

    def test_observe_lower_value_is_noop(self):
        _sim, _src, clock, _h = self.make()
        high = clock.observe(Timestamp(10.0, 0, 2))
        before = clock.peek()
        clock.observe(Timestamp(1.0, 0, 2))
        assert clock.peek() == before

    def test_calibration_advances_physical(self):
        sim, _src, clock, _h = self.make()
        clock.calibrate_to(Timestamp(40.0, 0, 2), slack=2.5)
        assert clock.physical() == pytest.approx(42.5)

    def test_calibration_never_moves_backwards(self):
        _sim, _src, clock, _h = self.make()
        clock.calibrate_to_time(100.0)
        clock.calibrate_to_time(10.0)
        assert clock.physical() == pytest.approx(100.0)

    def test_jump_to_clears_past(self):
        _sim, _src, clock, _h = self.make()
        clock.jump_to(Timestamp(500.0, 3, 7))
        assert clock.tick() > Timestamp(500.0, 3, 7)

    def test_stretch_disabled_ignores_floor(self):
        sim, _src, clock, holder = self.make()
        clock.stretch_enabled = False
        holder[0] = Timestamp(50.0, 0, 9)
        sim.run(until=100.0)
        ts = clock.tick()
        assert ts.time == pytest.approx(100.0)
        assert clock.stretch_count == 0

    def test_calibration_disabled_ignores_tags(self):
        _sim, _src, clock, _h = self.make()
        clock.calibration_enabled = False
        clock.calibrate_to_time(1000.0)
        clock.observe(Timestamp(900.0, 0, 2))
        assert clock.physical() == pytest.approx(0.0)
        assert clock.peek() <= ZERO_TS.with_nid(1)

    @given(st.lists(st.sampled_from(["tick", "advance", "observe", "floor", "unfloor"]), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_monotone_under_arbitrary_interleavings(self, actions):
        sim = Simulator()
        src = ClockSource(sim)
        holder = [None]
        clock = DClock(src, nid=1, floor_fn=lambda: holder[0])
        produced = []
        t = 0.0
        for action in actions:
            if action == "tick":
                produced.append(clock.tick())
            elif action == "advance":
                t += 10.0
                sim.run(until=t)
            elif action == "observe":
                clock.observe(Timestamp(t + 5.0, 2, 2))
            elif action == "floor":
                holder[0] = Timestamp(t + 50.0, 0, 9)
            else:
                holder[0] = None
        assert produced == sorted(produced)
        assert len(set(produced)) == len(produced)
