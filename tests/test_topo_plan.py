"""Unit tests for the topology subsystem: plans, generator, profiles.

Simulation-free (plan algebra, serialization, generation invariants,
preset resolution); the end-to-end churn trials live in
``tests/test_topo_churn.py``.
"""

import random

import pytest

from repro.errors import ConfigError
from repro.topo import (
    RTT_PROFILES,
    SERVICE_PROFILES,
    TOPO_KINDS,
    TopologyPlan,
    generate_topology_plan,
    resolve_service_multipliers,
)
from repro.topo.plan import INSTANT_KINDS, STRUCTURAL_KINDS


class TestPlanAlgebra:
    def test_add_keeps_time_order(self):
        plan = TopologyPlan()
        plan.add(500.0, "region_leave", region="r1")
        plan.add(100.0, "move_shard", shard="s0", dst="r2")
        assert [e.kind for e in plan.events] == ["move_shard", "region_leave"]

    def test_every_kind_is_structural_or_instant(self):
        assert STRUCTURAL_KINDS | INSTANT_KINDS == set(TOPO_KINDS)
        assert not STRUCTURAL_KINDS & INSTANT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TopologyPlan().add(0.0, "teleport_shard", shard="s0")

    def test_missing_and_extra_args_rejected(self):
        with pytest.raises(ConfigError):
            TopologyPlan().add(0.0, "move_shard", shard="s0")  # no dst
        with pytest.raises(ConfigError):
            TopologyPlan().add(0.0, "move_shard", shard="s0", dst="r1",
                               extra=True)

    def test_migrate_fraction_bounds(self):
        with pytest.raises(ConfigError):
            TopologyPlan().add(0.0, "migrate_clients",
                               src="r0", dst="r1", fraction=0.0)
        with pytest.raises(ConfigError):
            TopologyPlan().add(0.0, "migrate_clients",
                               src="r0", dst="r0", fraction=0.5)

    def test_json_round_trip_is_canonical(self):
        plan = TopologyPlan(name="rt", seed=7)
        plan.add(900.0, "region_join", region="r3", shards=["s0"])
        plan.add(1500.0, "migrate_clients", src="r1", dst="r2", fraction=0.1)
        text = plan.to_json()
        again = TopologyPlan.from_json(text)
        assert again.to_json() == text
        assert again.seed == 7
        assert [e.to_dict() for e in again.events] == \
            [e.to_dict() for e in plan.events]

    def test_subset_supports_ddmin(self):
        plan = TopologyPlan()
        for t in (100.0, 200.0, 300.0):
            plan.add(t, "move_shard", shard="s0", dst="r1")
        half = plan.subset([0, 2])
        assert len(half) == 2
        assert [e.time for e in half.events] == [100.0, 300.0]
        # The subset is a deep copy: mutating it leaves the parent alone.
        half.events[0].args["dst"] = "r2"
        assert plan.events[0].args["dst"] == "r1"


class TestGenerator:
    def test_same_seed_same_plan(self):
        for seed in range(6):
            a = generate_topology_plan(seed)
            b = generate_topology_plan(seed)
            assert a.to_json() == b.to_json()

    def test_plans_validate_and_vary(self):
        plans = [generate_topology_plan(s) for s in range(8)]
        for plan in plans:
            plan.validate()
        assert len({p.to_json() for p in plans}) > 1

    def test_structural_times_are_monotone(self):
        for seed in range(8):
            times = [e.time
                     for e in generate_topology_plan(seed).structural()]
            assert times == sorted(times)

    def test_region_leaves_never_empty_deployment(self):
        # Replaying the generator's bookkeeping: after applying every
        # structural event in order, at least one region still hosts shards.
        for seed in range(10):
            plan = generate_topology_plan(seed, num_regions=3,
                                          shards_per_region=1)
            homes = {f"s{k}": f"r{k}" for k in range(3)}
            for event in plan.structural():
                if event.kind == "move_shard":
                    homes[event.args["shard"]] = event.args["dst"]
                elif event.kind == "region_join":
                    for shard in event.args["shards"]:
                        homes[shard] = event.args["region"]
                elif event.kind == "region_leave":
                    src = event.args["region"]
                    dst = event.args.get("dst")
                    for shard, region in homes.items():
                        if region == src:
                            assert dst is not None
                            homes[shard] = dst
            assert homes  # some shard always has a home
            assert len(set(homes.values())) >= 1


class TestProfiles:
    def test_rtt_profiles_are_symmetric_zero_diagonal(self):
        for name, matrix in RTT_PROFILES.items():
            n = len(matrix)
            for i in range(n):
                assert matrix[i][i] == 0.0, name
                for j in range(n):
                    assert matrix[i][j] == matrix[j][i], name

    def test_resolve_named_service_profile(self):
        regions = ["r0", "r1", "r2"]
        out = resolve_service_multipliers("edge-tiers", regions)
        tiers = SERVICE_PROFILES["edge-tiers"]
        assert out == {r: tiers[i] for i, r in enumerate(sorted(regions))}

    def test_resolve_mapping_validates_factors(self):
        assert resolve_service_multipliers({"r0": 2.0}, ["r0"]) == {"r0": 2.0}
        with pytest.raises(ConfigError):
            resolve_service_multipliers({"r0": 0.0}, ["r0"])
        with pytest.raises(ConfigError):
            resolve_service_multipliers("no-such-profile", ["r0"])

    def test_unknown_rtt_profile_rejected(self):
        from repro.topo import apply_rtt_profile

        class _Net:
            def set_cross_region_rtt(self, rtt, r1, r2):
                pass

        with pytest.raises(ConfigError):
            apply_rtt_profile(_Net(), ["r0", "r1"], "no-such-profile")


class TestShrinkerIntegration:
    def test_chaos_ddmin_shrinks_topology_plans(self):
        """The chaos shrinker duck-types TopologyPlan: a synthetic oracle
        that fails on a single event shrinks a 6-event plan down to it."""
        from repro.chaos import shrink_plan

        plan = TopologyPlan()
        rng = random.Random(3)
        for i in range(6):
            plan.add(100.0 * (i + 1), "move_shard",
                     shard=f"s{rng.randrange(3)}", dst=f"r{rng.randrange(3)}")
        plan.add(650.0, "region_leave", region="r1")

        def failing(p):
            return any(e.kind == "region_leave" for e in p.events)

        result = shrink_plan(plan, failing, max_runs=32)
        assert len(result.plan) == 1
        assert result.plan.events[0].kind == "region_leave"
