"""Handler-level unit tests for SLOG's sequencers and global orderer."""

import pytest

from repro.baselines.slog import SlogSystem
from repro.txn.model import Transaction
from repro.wire.messages import SlogGlobalBatch, SlogGlobalSubmit, SlogSubmit
from tests.conftest import KV_SCHEMA, kv_set, load_kv, make_topology


@pytest.fixture
def system():
    topo = make_topology(regions=2, spr=1, clients=1)
    sys_ = SlogSystem(topo, KV_SCHEMA, load_kv, seed=1)
    sys_.start()
    return sys_


class TestSequencer:
    def test_single_home_appends_locally(self, system):
        seq = system.sequencers["r0"]
        txn = Transaction("w", [kv_set(0, 1, 1)])
        seq.on_submit("r0.n0", SlogSubmit(txn=txn, coord="r0.n0"))
        assert seq.stats.get("appended") == 1
        assert system.orderer.stats.get("global_submits") == 0

    def test_multi_home_forwards_to_global(self, system):
        seq = system.sequencers["r0"]
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        seq.on_submit("r0.n0", SlogSubmit(txn=txn, coord="r0.n0"))
        system.run(until=system.sim.now + 60.0)
        assert seq.stats.get("appended", 0) == 0  # waits for the global order
        assert system.orderer.stats.get("global_submits") == 1

    def test_global_batch_appends_only_relevant(self, system):
        seq = system.sequencers["r0"]
        local = Transaction("w", [kv_set(0, 1, 1)])
        foreign = Transaction("w", [kv_set(1, 1, 1)])
        seq.on_global_batch("global.seq0", SlogGlobalBatch(entries=[
            SlogGlobalSubmit(txn=local, coord="x", seq=0),
            SlogGlobalSubmit(txn=foreign, coord="x", seq=1),
        ]))
        assert seq.stats.get("appended") == 1
        assert seq.stats.get("global_entries_seen") == 2

    def test_log_indexes_are_dense(self, system):
        seq = system.sequencers["r0"]
        for i in range(4):
            seq.on_submit("r0.n0", SlogSubmit(
                txn=Transaction("w", [kv_set(0, i, i)]), coord="r0.n0"))
        assert seq.log_index == 4


class TestGlobalOrderer:
    def test_batching_respects_interval(self, system):
        orderer = system.orderer
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        orderer.on_submit("r0.seq", SlogGlobalSubmit(txn=txn, coord="r0.n0"))
        orderer.on_submit("r0.seq", SlogGlobalSubmit(txn=Transaction(
            "w", [kv_set(0, 2, 1), kv_set(1, 2, 2, piece_index=1)]), coord="r0.n0"))
        assert orderer.stats.get("batches", 0) == 0
        system.run(until=system.sim.now + 30.0)
        assert orderer.stats.get("batches") == 1  # one batch, two entries
        assert orderer.stats.get("global_ordered") == 2
        assert orderer.next_seq == 2

    def test_sequence_numbers_assigned_in_arrival_order(self, system):
        orderer = system.orderer
        entries = []
        for i in range(3):
            entry = SlogGlobalSubmit(txn=Transaction(
                "w", [kv_set(0, i, i), kv_set(1, i, i, piece_index=1)]),
                coord="r0.n0")
            entries.append(entry)
            orderer.on_submit("r0.seq", entry)
        system.run(until=system.sim.now + 30.0)
        assert [e.seq for e in entries] == [0, 1, 2]

    def test_raft_retry_counter_under_cpu_pressure(self, system):
        orderer = system.orderer
        # A huge CPU charge delays the followers' ack responses past the
        # timeout; the batch loop must retry rather than die.
        orderer.endpoint.charge(500.0)
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        orderer.on_submit("r0.seq", SlogGlobalSubmit(txn=txn, coord="r0.n0"))
        system.run(until=system.sim.now + 1500.0)
        assert orderer.stats.get("batches") == 1  # eventually ordered
        assert orderer.stats.get("raft_retries") >= 1
