"""Tests for the transaction model and the shared executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CyclicDependencyError, MissingRowError, TransactionError
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.executor import BufferedStore, execute_on_shard
from repro.txn.model import ConditionalAbort, Piece, Transaction


def kv_schema():
    return TableSchema("kv", ["k", "v"], ["k"])


def make_shard(values):
    shard = Shard("s0", [kv_schema()])
    for k, v in values.items():
        shard.insert("kv", {"k": k, "v": v})
    return shard


def write_piece(index, shard_id, key, value, produces=(), needs=(), lock_keys=()):
    def body(ctx):
        if ctx.store.try_get("kv", (key,)) is None:
            ctx.store.insert("kv", {"k": key, "v": value})
        else:
            ctx.store.update("kv", (key,), {"v": value})
        for var in produces:
            ctx.put(var, value)

    return Piece(index, shard_id, body, needs=needs, produces=produces, lock_keys=lock_keys)


class TestTransactionValidation:
    def test_requires_pieces(self):
        with pytest.raises(TransactionError):
            Transaction("t", [])

    def test_duplicate_piece_indexes_rejected(self):
        pieces = [write_piece(0, "s0", "a", 1), write_piece(0, "s0", "b", 2)]
        with pytest.raises(TransactionError):
            Transaction("t", pieces)

    def test_unknown_needed_variable_rejected(self):
        piece = Piece(0, "s0", lambda ctx: None, needs=("ghost",))
        with pytest.raises(TransactionError):
            Transaction("t", [piece])

    def test_duplicate_producer_rejected(self):
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("x", 1), produces=("x",)),
            Piece(1, "s1", lambda ctx: ctx.put("x", 2), produces=("x",)),
        ]
        with pytest.raises(TransactionError):
            Transaction("t", pieces)

    def test_backward_dependency_rejected_as_cycle(self):
        pieces = [
            Piece(0, "s0", lambda ctx: None, needs=("late",)),
            Piece(1, "s1", lambda ctx: ctx.put("late", 1), produces=("late",)),
        ]
        with pytest.raises(CyclicDependencyError):
            Transaction("t", pieces)

    def test_shard_ids_sorted_unique(self):
        pieces = [write_piece(0, "s1", "a", 1), write_piece(1, "s0", "b", 2),
                  write_piece(2, "s1", "c", 3)]
        txn = Transaction("t", pieces)
        assert txn.shard_ids == ("s0", "s1")

    def test_unique_ids(self):
        t1 = Transaction("t", [write_piece(0, "s0", "a", 1)])
        t2 = Transaction("t", [write_piece(0, "s0", "a", 1)])
        assert t1.txn_id != t2.txn_id


class TestDependencyQueries:
    def make_txn(self):
        # Acyclic chain with fan-out: s0 -> s1 -> s2 and s0 -> s2.
        p0 = Piece(0, "s0", lambda ctx: ctx.put("x", 1), produces=("x",))
        p1 = Piece(1, "s1", lambda ctx: ctx.put("y", 2), needs=("x",), produces=("y",))
        p2 = Piece(2, "s2", lambda ctx: None, needs=("x", "y"))
        return Transaction("t", [p0, p1, p2])

    def test_external_needs_excludes_same_shard(self):
        txn = self.make_txn()
        assert txn.external_needs("s1") == frozenset({"x"})
        assert txn.external_needs("s2") == frozenset({"x", "y"})
        assert txn.external_needs("s0") == frozenset()

    def test_consumers_of(self):
        txn = self.make_txn()
        assert txn.consumers_of("x") == frozenset({"s1", "s2"})
        assert txn.consumers_of("y") == frozenset({"s2"})

    def test_dependency_edges(self):
        txn = self.make_txn()
        assert txn.dependency_edges() == {("s0", "s1"), ("s0", "s2"), ("s1", "s2")}

    def test_has_value_dependency(self):
        assert self.make_txn().has_value_dependency()
        simple = Transaction("t", [write_piece(0, "s0", "a", 1)])
        assert not simple.has_value_dependency()

    def test_lock_keys_on(self):
        pieces = [
            write_piece(0, "s0", "a", 1, lock_keys=(("kv", "a"),)),
            write_piece(1, "s0", "b", 2, lock_keys=(("kv", "b"),)),
            write_piece(2, "s1", "c", 3, lock_keys=(("kv", "c"),)),
        ]
        txn = Transaction("t", pieces)
        assert txn.lock_keys_on("s0") == frozenset({("kv", "a"), ("kv", "b")})


class TestBufferedStore:
    def test_reads_see_own_writes(self):
        shard = make_shard({"a": 1})
        store = BufferedStore(shard)
        store.update("kv", ("a",), {"v": 5})
        assert store.get("kv", ("a",))["v"] == 5
        assert shard.get("kv", ("a",))["v"] == 1  # not flushed yet

    def test_flush_applies_in_order(self):
        shard = make_shard({"a": 1})
        store = BufferedStore(shard)
        store.update("kv", ("a",), {"v": 2})
        store.insert("kv", {"k": "b", "v": 3})
        store.delete("kv", ("a",))
        assert store.flush() == 3
        assert shard.try_get("kv", ("a",)) is None
        assert shard.get("kv", ("b",))["v"] == 3

    def test_deleted_row_invisible(self):
        shard = make_shard({"a": 1})
        store = BufferedStore(shard)
        store.delete("kv", ("a",))
        assert store.try_get("kv", ("a",)) is None
        with pytest.raises(MissingRowError):
            store.update("kv", ("a",), {"v": 9})

    def test_recording_captures_access_sets(self):
        shard = make_shard({"a": 1, "b": 2})
        store = BufferedStore(shard, record=True)
        store.get("kv", ("a",))
        store.update("kv", ("b",), {"v": 7})
        assert ("kv", ("a",)) in store.read_set
        assert ("kv", ("b",)) in store.write_set

    def test_scan_prefix_merges_overlay(self):
        schema = TableSchema("t", ["a", "b", "v"], ["a", "b"])
        shard = Shard("s0", [schema])
        shard.insert("t", {"a": 1, "b": 1, "v": 0})
        shard.insert("t", {"a": 1, "b": 2, "v": 0})
        store = BufferedStore(shard)
        store.insert("t", {"a": 1, "b": 3, "v": 0})
        store.delete("t", (1, 1))
        assert store.scan_prefix("t", (1,)) == [(1, 2), (1, 3)]

    def test_preload_seeds_state_without_ops(self):
        shard = make_shard({"a": 1})
        store = BufferedStore(shard, record=True)
        store.preload([("update", "kv", ("a",), {"v": 42})])
        assert store.get("kv", ("a",))["v"] == 42
        assert store.buffered_ops == []  # preloaded writes are not re-emitted
        assert store.write_set == []


class TestExecuteOnShard:
    def test_outputs_and_writes(self):
        shard = make_shard({"a": 1})
        txn = Transaction("t", [write_piece(0, "s0", "a", 10, produces=("va",))])
        outcome = execute_on_shard(txn, "s0", shard, {})
        assert outcome.outputs == {"va": 10}
        assert shard.get("kv", ("a",))["v"] == 10

    def test_pieces_chain_local_env(self):
        shard = make_shard({"a": 1})

        def p0(ctx):
            ctx.put("x", ctx.store.get("kv", ("a",))["v"] + 1)

        def p1(ctx):
            ctx.store.update("kv", ("a",), {"v": ctx.inputs["x"] * 10})

        txn = Transaction("t", [
            Piece(0, "s0", p0, produces=("x",)),
            Piece(1, "s0", p1, needs=("x",)),
        ])
        execute_on_shard(txn, "s0", shard, {})
        assert shard.get("kv", ("a",))["v"] == 20

    def test_external_inputs_visible(self):
        shard = make_shard({})

        def p1(ctx):
            ctx.store.insert("kv", {"k": "out", "v": ctx.inputs["remote"]})

        remote_producer = Piece(0, "s9", lambda ctx: ctx.put("remote", 7), produces=("remote",))
        txn = Transaction("t", [remote_producer, Piece(1, "s0", p1, needs=("remote",))])
        execute_on_shard(txn, "s0", shard, {"remote": 7})
        assert shard.get("kv", ("out",))["v"] == 7

    def test_conditional_abort_applies_nothing(self):
        shard = make_shard({"a": 1})

        def p0(ctx):
            ctx.store.update("kv", ("a",), {"v": 99})
            ctx.abort("nope")

        txn = Transaction("t", [Piece(0, "s0", p0)])
        outcome = execute_on_shard(txn, "s0", shard, {})
        assert outcome.aborted and outcome.abort_reason == "nope"
        assert shard.get("kv", ("a",))["v"] == 1

    def test_abort_in_later_piece_rolls_back_earlier_piece(self):
        shard = make_shard({"a": 1})

        def p0(ctx):
            ctx.store.update("kv", ("a",), {"v": 50})

        def p1(ctx):
            raise ConditionalAbort("later")

        txn = Transaction("t", [Piece(0, "s0", p0), Piece(1, "s0", p1)])
        outcome = execute_on_shard(txn, "s0", shard, {})
        assert outcome.aborted
        assert shard.get("kv", ("a",))["v"] == 1

    def test_missing_declared_output_aborts(self):
        txn = Transaction("t", [Piece(0, "s0", lambda ctx: None, produces=("x",))])
        outcome = execute_on_shard(txn, "s0", make_shard({}), {})
        assert outcome.aborted
        assert "did not produce" in outcome.abort_reason

    def test_piece_indexes_subset(self):
        shard = make_shard({"a": 1, "b": 2})
        txn = Transaction("t", [
            write_piece(0, "s0", "a", 10),
            write_piece(1, "s0", "b", 20),
        ])
        execute_on_shard(txn, "s0", shard, {}, piece_indexes=[1])
        assert shard.get("kv", ("a",))["v"] == 1
        assert shard.get("kv", ("b",))["v"] == 20

    def test_deferred_ops_returned_not_applied(self):
        shard = make_shard({"a": 1})
        txn = Transaction("t", [write_piece(0, "s0", "a", 10)])
        outcome = execute_on_shard(txn, "s0", shard, {}, apply_writes=False)
        assert shard.get("kv", ("a",))["v"] == 1
        assert outcome.ops == [("update", "kv", ("a",), {"v": 10})]

    def test_determinism_across_replicas(self):
        def run():
            shard = make_shard({"a": 1})
            txn = Transaction("t", [write_piece(0, "s0", "a", 10)], txn_id="fixed")
            execute_on_shard(txn, "s0", shard, {})
            return shard.digest()

        assert run() == run()


class TestShardCycleDetection:
    """§4.1/§5: circular cross-shard value dependencies are rejected."""

    def test_ping_pong_cycle_rejected(self):
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("x", 1), produces=("x",)),
            Piece(1, "s1", lambda ctx: ctx.put("y", 2), needs=("x",), produces=("y",)),
            Piece(2, "s0", lambda ctx: None, needs=("y",)),
        ]
        with pytest.raises(CyclicDependencyError):
            Transaction("t", pieces)

    def test_three_shard_cycle_rejected(self):
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("a", 1), produces=("a",)),
            Piece(1, "s1", lambda ctx: ctx.put("b", 2), needs=("a",), produces=("b",)),
            Piece(2, "s2", lambda ctx: ctx.put("c", 3), needs=("b",), produces=("c",)),
            Piece(3, "s0", lambda ctx: None, needs=("c",)),
        ]
        with pytest.raises(CyclicDependencyError):
            Transaction("t", pieces)

    def test_chain_is_fine(self):
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("a", 1), produces=("a",)),
            Piece(1, "s1", lambda ctx: ctx.put("b", 2), needs=("a",), produces=("b",)),
            Piece(2, "s2", lambda ctx: None, needs=("b",)),
        ]
        Transaction("t", pieces)  # no error

    def test_fan_in_is_fine(self):
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("a", 1), produces=("a",)),
            Piece(1, "s1", lambda ctx: ctx.put("b", 2), produces=("b",)),
            Piece(2, "s2", lambda ctx: None, needs=("a", "b")),
        ]
        Transaction("t", pieces)  # no error

    def test_same_shard_roundtrip_without_cross_edge_is_fine(self):
        # w_name/d_name style: produced and consumed on the same shard.
        pieces = [
            Piece(0, "s0", lambda ctx: ctx.put("local", 1), produces=("local",)),
            Piece(1, "s1", lambda ctx: ctx.put("remote", 2), produces=("remote",)),
            Piece(2, "s0", lambda ctx: None, needs=("local", "remote")),
        ]
        Transaction("t", pieces)  # s1 -> s0 only: acyclic


class TestBufferedStoreEquivalence:
    """Property: buffering + flush is observationally identical to applying
    the same operations directly."""

    @given(st.lists(st.tuples(st.sampled_from(["ins", "upd", "del"]),
                              st.integers(0, 8), st.integers(0, 99)),
                    max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_flush_equals_direct_application(self, ops):
        from hypothesis import assume
        from repro.txn.executor import BufferedStore

        def fresh():
            shard = Shard("s0", [kv_schema()])
            for k in range(4):
                shard.insert("kv", {"k": k, "v": 0})
            return shard

        direct = fresh()
        buffered_shard = fresh()
        store = BufferedStore(buffered_shard)

        def apply(target, op, k, v):
            """Apply with identical error-handling on both sides."""
            if op == "ins":
                if target.try_get("kv", (k,)) is None:
                    target.insert("kv", {"k": k, "v": v})
            elif op == "upd":
                if target.try_get("kv", (k,)) is not None:
                    target.update("kv", (k,), {"v": v})
            else:
                if target.try_get("kv", (k,)) is not None:
                    target.delete("kv", (k,))

        for op, k, v in ops:
            apply(direct, op, k, v)
            apply(store, op, k, v)
            # Mid-stream reads agree too.
            assert store.try_get("kv", (k,)) == direct.try_get("kv", (k,))
        store.flush()
        assert buffered_shard.digest() == direct.digest()
