"""Critical-path analysis and the Chrome trace-event exporter."""

import json

import pytest

from repro.bench.harness import Trial, run_trial
from repro.obs.chrome import chrome_events, export_chrome
from repro.obs.critical_path import (attribution, critical_path,
                                     render_attribution, render_exemplar,
                                     slowest)
from repro.workloads.tpcc import TpccWorkload


@pytest.fixture(scope="module")
def traced_result():
    trial = Trial("dast", lambda topo: TpccWorkload(topo),
                  clients_per_region=4, duration_ms=1500.0,
                  warmup_ms=300.0, cooldown_ms=200.0, obs_causal=True)
    result = run_trial(trial)
    return result, result.obs.traces()


class TestCriticalPath:
    def test_segments_telescope_over_full_latency(self, traced_result):
        _, traces = traced_result
        checked = 0
        for trace in traces.values():
            if not trace.complete:
                continue
            result = critical_path(trace)
            covered = sum(s.duration for s in result.segments)
            assert covered == pytest.approx(result.total, abs=1e-6)
            # Sorted, non-overlapping tiling of [t0, t1].
            for a, b in zip(result.segments, result.segments[1:]):
                assert b.start >= a.start - 1e-9
            checked += 1
        assert checked > 100

    def test_crt_coverage_at_least_95_percent(self, traced_result):
        """The acceptance bar: >= 95% of each CRT transaction's end-to-end
        virtual latency attributed to named hops/phases."""
        _, traces = traced_result
        crt = [t for t in traces.values() if t.complete and t.root.is_crt]
        assert crt
        for trace in crt:
            assert critical_path(trace).coverage >= 0.95

    def test_incomplete_trace_yields_none(self, traced_result):
        _, traces = traced_result
        pending = [t for t in traces.values() if not t.complete]
        if pending:
            assert critical_path(pending[0]) is None

    def test_attribution_table_shape_and_shares(self, traced_result):
        _, traces = traced_result
        table = attribution(traces.values(), crt=True)
        assert table["txns"] > 0
        assert table["coverage"] >= 0.95
        shares = sum(r["share"] for r in table["rows"])
        assert shares == pytest.approx(1.0, abs=1e-6)
        # Cross-region consensus hops must show up on the CRT critical path.
        assert any("(cross)" in r["segment"] for r in table["rows"])
        # Sorted by total contribution, descending.
        totals = [r["total_ms"] for r in table["rows"]]
        assert totals == sorted(totals, reverse=True)

    def test_slowest_exemplars_sorted(self, traced_result):
        _, traces = traced_result
        top = slowest(traces.values(), k=3)
        assert len(top) == 3
        totals = [r.total for _, r in top]
        assert totals == sorted(totals, reverse=True)
        text = render_exemplar(*top[0])
        assert top[0][0].root.trace_id in text

    def test_render_attribution_mentions_top_segment(self, traced_result):
        _, traces = traced_result
        table = attribution(traces.values(), crt=True)
        text = render_attribution(table)
        assert table["rows"][0]["segment"] in text

    def test_attribution_empty(self):
        table = attribution([])
        assert table["txns"] == 0 and table["rows"] == []
        assert "no completed" in render_attribution(table)


class TestChromeExport:
    def test_export_is_loadable_json_array(self, traced_result, tmp_path):
        _, traces = traced_result
        path = str(tmp_path / "trace.json")
        n = export_chrome(traces.values(), path, limit=50)
        events = json.loads(open(path).read())
        assert isinstance(events, list) and len(events) == n

    def test_event_structure(self, traced_result):
        _, traces = traced_result
        events = chrome_events(traces.values(), limit=20)
        phases = {e["ph"] for e in events}
        assert {"X", "s", "f", "i", "M"} <= phases
        for ev in events:
            assert isinstance(ev.get("pid"), int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], int)  # microseconds, integral
            if ev["ph"] == "X":
                assert ev["dur"] >= 1
        # Every flow start has a matching finish (no dropped hops here).
        starts = {e["id"] for e in events if e["ph"] == "s"}
        ends = {e["id"] for e in events if e["ph"] == "f"}
        assert ends <= starts

    def test_host_process_metadata(self, traced_result):
        _, traces = traced_result
        events = chrome_events(traces.values(), limit=5)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert any(".c" in n for n in names)  # client track present
        assert any(".n" in n for n in names)  # node track present
