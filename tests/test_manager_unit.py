"""Handler-level unit tests for the DAST region manager."""

import pytest

from repro.clock.hlc import Timestamp
from repro.core.manager import RttEstimator
from repro.txn.model import Transaction
from repro.wire.messages import AbortCrt, CrtUpdate, PrepRemote
from tests.conftest import kv_set, make_dast


@pytest.fixture
def mgr():
    system = make_dast(regions=2, spr=1)
    system.start()
    system.run(until=200.0)
    return system, system.managers["r1"]


def crt_txn():
    return Transaction("crt", [kv_set(0, 0, 1), kv_set(1, 0, 2, piece_index=1)])


def prep_payload(system, txn):
    """A prep-remote payload as it would look on arrival at the manager.

    The handler is invoked directly (no simulated travel), so the
    coordinator's physical tag is backdated by one one-way delay to mimic
    the 50 ms the message would have spent in flight.
    """
    coord = system.nodes["r0.n0"]
    return PrepRemote(
        txn=txn,
        src_ts=coord.dclock.tick(),
        coord=coord.host,
        vid=0,
        phys=coord.dclock.physical() - system.timing.cross_region_rtt / 2.0,
    )


class TestRttEstimator:
    def test_default_before_samples(self):
        est = RttEstimator(default_rtt=100.0)
        assert est.estimate("rX") == 100.0
        assert est.min_estimate("rX") == 100.0

    def test_ewma_moves_toward_samples(self):
        est = RttEstimator(default_rtt=100.0, alpha=0.5)
        est.update("r0", 200.0)
        assert est.estimate("r0") == 200.0  # first sample adopted directly
        est.update("r0", 100.0)
        assert est.estimate("r0") == pytest.approx(150.0)

    def test_minimum_tracks_floor_not_queueing(self):
        est = RttEstimator(default_rtt=100.0)
        for sample in (120.0, 98.0, 180.0, 99.0, 400.0):
            est.update("r0", sample)
        assert est.min_estimate("r0") == 98.0
        assert est.estimate("r0") > 98.0

    def test_samples_clamped_positive(self):
        est = RttEstimator(default_rtt=100.0)
        est.update("r0", -50.0)  # skewed clocks can produce negative samples
        assert est.estimate("r0") > 0.0


class TestAnticipation:
    def test_anticipated_timestamp_is_in_the_future(self, mgr):
        system, manager = mgr
        reply = manager.on_prep_remote("r0.n0", prep_payload(system, crt_txn()))
        anticipated = reply["anticipated_ts"]
        assert anticipated.time > manager.dclock.physical() + 50.0

    def test_idempotent_replay_returns_same_timestamp(self, mgr):
        system, manager = mgr
        payload = prep_payload(system, crt_txn())
        first = manager.on_prep_remote("r0.n0", payload)
        second = manager.on_prep_remote("r0.n0", payload)  # coordinator retry
        assert first["anticipated_ts"] == second["anticipated_ts"]
        assert manager.stats.get("crt_anticipated") == 1

    def test_anticipations_strictly_monotone(self, mgr):
        system, manager = mgr
        values = [
            manager.on_prep_remote("r0.n0", prep_payload(system, crt_txn()))["anticipated_ts"]
            for _ in range(5)
        ]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_pending_entry_tracks_floor(self, mgr):
        system, manager = mgr
        txn = crt_txn()
        reply = manager.on_prep_remote("r0.n0", prep_payload(system, txn))
        assert manager._pending_floor() == reply["anticipated_ts"]
        manager.on_crt_update(
            "r1.n0",
            CrtUpdate(txn_id=txn.txn_id, txn=txn, coord="r0.n0",
                      commit_ts=Timestamp(0.0, 0, 0), input_ready=True),
        )
        assert manager._pending_floor() is None

    def test_abort_clears_pending(self, mgr):
        system, manager = mgr
        txn = crt_txn()
        manager.on_prep_remote("r0.n0", prep_payload(system, txn))
        manager.on_abort_crt("r0.mgr", AbortCrt(txn_id=txn.txn_id))
        assert txn.txn_id not in manager.pending

    def test_gc_drops_long_stale_entries(self, mgr):
        system, manager = mgr
        txn = crt_txn()
        manager.on_prep_remote("r0.n0", prep_payload(system, txn))
        assert txn.txn_id in manager.pending
        # Far past the anticipated time: the coordinator evidently died
        # pre-commit; participants hold their own floors by now.
        system.run(until=system.sim.now + 12 * system.timing.cross_region_rtt)
        manager._gc_pending()
        assert txn.txn_id not in manager.pending
        assert manager.stats.get("pending_gc") == 1

    def test_dispatch_reaches_only_local_participants(self, mgr):
        system, manager = mgr
        txn = crt_txn()
        manager.on_prep_remote("r0.n0", prep_payload(system, txn))
        system.run(until=system.sim.now + 20.0)
        # r1's replicas (participants) got prep_crt...
        for host in ("r1.n0", "r1.n1", "r1.n2"):
            assert txn.txn_id in system.nodes[host].records
        # ...r0's replicas were NOT dispatched to by r1's manager (their own
        # manager would do that on its own prep_remote).
        for host in ("r0.n0", "r0.n1", "r0.n2"):
            rec = system.nodes[host].records.get(txn.txn_id)
            assert rec is None or rec.anticipated_ts != manager.pending.get(
                txn.txn_id
            )


class TestAnticipationSkewCoupling:
    def test_skewed_source_inflates_rtt_sample(self, mgr):
        """The Fig 10 mechanism: RTT samples are clock-difference based, so
        a coordinator whose clock runs behind inflates the estimate."""
        system, manager = mgr
        txn = crt_txn()
        payload = prep_payload(system, txn)
        payload.phys -= 200.0  # coordinator clock 200ms behind
        manager.on_prep_remote("r0.n0", payload)
        assert manager.rtt.estimate("r0") > 250.0
