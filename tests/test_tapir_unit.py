"""Handler-level unit tests for Tapir's OCC validation."""

import pytest

from repro.baselines.tapir import TapirSystem
from repro.wire.messages import TapirAbort, TapirCommit, TapirPrepare
from tests.conftest import KV_SCHEMA, load_kv, make_topology


@pytest.fixture
def replica():
    topo = make_topology(regions=1, spr=1, clients=1)
    system = TapirSystem(topo, KV_SCHEMA, load_kv, seed=1)
    system.start()
    return system, system.nodes["r0.n0"]


def prepare(node, txn_id, reads=None, writes=None):
    return node.on_prepare("c", TapirPrepare(
        txn_id=txn_id, reads=reads or {}, writes=writes or []))


class TestOccValidation:
    def test_clean_prepare_votes_yes(self, replica):
        _system, node = replica
        reply = prepare(node, "t1", reads={("kv", ("s0-0",)): 0},
                        writes=[("kv", ("s0-0",))])
        assert reply["vote"] is True
        assert "t1" in node.prepared

    def test_stale_read_version_votes_no(self, replica):
        _system, node = replica
        node.versions[("kv", ("s0-0",))] = 3
        reply = prepare(node, "t1", reads={("kv", ("s0-0",)): 2})
        assert reply["vote"] is False
        assert node.stats.get("vote_no_version") == 1

    def test_write_write_conflict_with_prepared_votes_no(self, replica):
        _system, node = replica
        prepare(node, "t1", writes=[("kv", ("s0-0",))])
        reply = prepare(node, "t2", writes=[("kv", ("s0-0",))])
        assert reply["vote"] is False
        assert node.stats.get("vote_no_ww") == 1

    def test_read_write_conflict_with_prepared_votes_no(self, replica):
        _system, node = replica
        prepare(node, "t1", writes=[("kv", ("s0-0",))])
        reply = prepare(node, "t2", reads={("kv", ("s0-0",)): 0})
        assert reply["vote"] is False
        assert node.stats.get("vote_no_rw") == 1

    def test_disjoint_prepared_txns_coexist(self, replica):
        _system, node = replica
        assert prepare(node, "t1", writes=[("kv", ("s0-0",))])["vote"]
        assert prepare(node, "t2", writes=[("kv", ("s0-1",))])["vote"]
        assert set(node.prepared) == {"t1", "t2"}

    def test_abort_releases_prepared_slot(self, replica):
        _system, node = replica
        prepare(node, "t1", writes=[("kv", ("s0-0",))])
        node.on_abort("c", TapirAbort(txn_id="t1"))
        reply = prepare(node, "t2", writes=[("kv", ("s0-0",))])
        assert reply["vote"] is True

    def test_commit_applies_ops_and_bumps_versions(self, replica):
        _system, node = replica
        prepare(node, "t1", writes=[("kv", ("s0-0",))])
        node.on_commit("c", TapirCommit(
            txn_id="t1",
            ops_by_shard={"s0": [("update", "kv", ("s0-0",), {"v": 42})]},
        ))
        assert node.shard.get("kv", ("s0-0",))["v"] == 42
        assert node.versions[("kv", ("s0-0",))] == 1
        assert "t1" not in node.prepared
        # A later prepare against the old version now fails.
        reply = prepare(node, "t2", reads={("kv", ("s0-0",)): 0})
        assert reply["vote"] is False
