"""Pool correctness: recycled objects must carry zero state between uses.

The load-bearing property (the module docstring's contract): a trial run
with pools enabled is canonically identical to the same trial with pools
disabled — same id stream, same RNG draws, same latencies, same traffic.
"""

import pytest

from repro.bench.harness import run_trial
from repro.fleet.spec import TrialSpec, canonical_json
from repro.txn.model import Piece, Transaction
from repro.txn.pool import ResultPool, TransactionPool


def _spec(pool: bool) -> TrialSpec:
    return TrialSpec(
        system="dast", workload="ycsb",
        workload_params={"theta": 0.7, "crt_ratio": 0.0,
                         "read_ratio": 0.95, "ops_per_txn": 2},
        replication=1, clients_per_region=4,
        duration_ms=500.0, warmup_ms=50.0, cooldown_ms=50.0, seed=1,
        open_loop={"users_per_region": 1200, "txn_per_user_s": 4.0,
                   "pool": pool},
    )


def _canonical(res) -> str:
    return canonical_json({"row": res.summary.as_row(),
                           "committed": res.summary.committed})


def _mini_txn() -> Transaction:
    return Transaction("mini", [Piece(0, "s0", lambda ctx: None,
                                      lock_keys=(("kv", "k1"),))])


class TestPooledTrialEquivalence:
    def test_pooled_and_fresh_trials_are_canonically_identical(self):
        pooled = run_trial(_spec(True).to_trial())
        fresh = run_trial(_spec(False).to_trial())
        assert pooled.summary.committed > 500
        assert _canonical(pooled) == _canonical(fresh)

    def test_pool_actually_recycles(self):
        res = run_trial(_spec(True).to_trial())
        engine = res.clients[0]
        assert engine.pool_enabled
        # Steady state: far more reuses than allocations (the free list
        # tracks the in-flight high-water mark, not the arrival count).
        assert engine.txn_pool.reused > engine.txn_pool.created
        assert engine.txn_pool.created < res.summary.committed / 10


class TestTransactionPool:
    def test_recycled_txn_resets_per_instance_fields(self):
        pool = TransactionPool()
        t1 = pool.acquire(("mini", "s0"), _mini_txn)
        size_fresh = t1.wire_size()  # populate the cache pre-release
        old_id = t1.txn_id
        t1.params["junk"] = 1
        t1.home_region = "r0"
        t1.participating_regions = ("r0", "r1")
        pool.release(t1)
        t2 = pool.acquire(("mini", "s0"), _mini_txn)
        assert t2 is t1  # recycled, not rebuilt
        assert t2.txn_id != old_id
        assert not t2.params
        assert t2.home_region is None
        assert t2.participating_regions == ()
        assert size_fresh > 0

    def test_recycled_wire_size_matches_recomputation(self):
        pool = TransactionPool()
        t1 = pool.acquire(("mini", "s0"), _mini_txn)
        t1.wire_size()
        pool.release(t1)
        t2 = pool.acquire(("mini", "s0"), _mini_txn)
        patched = t2.__dict__.get("_wire_size")
        assert patched is not None
        del t2.__dict__["_wire_size"]
        assert t2.wire_size() == patched

    def test_id_stream_is_shared_with_fresh_construction(self):
        """Pooled acquire draws from Transaction._ids exactly like a fresh
        construction, so pooled and fresh runs see identical id streams."""
        pool = TransactionPool()
        t1 = pool.acquire(("mini", "s0"), _mini_txn)
        pool.release(t1)
        recycled = pool.acquire(("mini", "s0"), _mini_txn)
        fresh = _mini_txn()
        assert int(recycled.txn_id[1:]) + 1 == int(fresh.txn_id[1:])

    def test_unpooled_release_is_a_noop(self):
        pool = TransactionPool()
        txn = _mini_txn()  # never acquired: no _pool_signature
        pool.release(txn)
        assert pool.acquire(("mini", "s0"), _mini_txn) is not txn


class TestResultPool:
    def test_recycled_result_resets_every_field(self):
        pool = ResultPool()
        r1 = pool.acquire("t1", "ycsb", True, False)
        r1.phases["p"] = 1.0
        r1.retries = 3
        r1.submit_time = 10.0
        r1.finish_time = 20.0
        r1.outputs["x"] = 1
        pool.release(r1)
        r2 = pool.acquire("t2", "ycsb", False, True, abort_reason="conflict")
        assert r2 is r1
        assert r2.txn_id == "t2"
        assert r2.committed is False and r2.is_crt is True
        assert r2.abort_reason == "conflict"
        assert r2.phases == {} and r2.outputs == {}
        assert r2.retries == 0
        assert r2.submit_time == 0.0 and r2.finish_time == 0.0
        assert pool.reused == 1 and pool.created == 1
