"""Tests for the ASCII plot helpers and traffic accounting."""

import pytest

from repro.bench.plots import ascii_cdf, ascii_plot, sparkline
from repro.bench.traffic import hotspot_ratio, traffic_report


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3 and len(set(line)) == 1

    def test_monotone_series_is_nondecreasing(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)

    def test_extremes_hit_end_ticks(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == "▁" and line[1] == "█"


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(no data)"

    def test_contains_marks_and_legend(self):
        text = ascii_plot({"dast": [(0, 1), (1, 2)], "janus": [(0, 3), (1, 4)]},
                          width=20, height=5)
        assert "d" in text and "j" in text
        assert "legend: d=dast  j=janus" in text

    def test_axis_bounds_printed(self):
        text = ascii_plot({"x": [(10.0, 1.0), (90.0, 9.0)]}, width=20, height=5)
        assert "10.0" in text and "90.0" in text

    def test_single_point_does_not_crash(self):
        assert "x" in ascii_plot({"x": [(1.0, 1.0)]})


class TestAsciiCdf:
    def test_empty(self):
        assert ascii_cdf([]) == "(no data)"

    def test_percentile_rows(self):
        text = ascii_cdf(list(range(1, 101)), label="latency")
        assert "p50" in text and "p99" in text
        assert "latency" in text

    def test_values_monotone_down_the_rows(self):
        text = ascii_cdf([1.0, 2.0, 3.0, 50.0])
        values = [float(line.split()[-1]) for line in text.splitlines()[1:]]
        assert values == sorted(values)


class TestTraffic:
    @pytest.fixture
    def system(self):
        from repro.txn.model import Transaction
        from tests.conftest import kv_set, make_dast, submit_and_run

        system = make_dast(regions=2, spr=1)
        system.start()
        for i in range(3):
            submit_and_run(system, Transaction("w", [kv_set(0, i, i)]))
        crt = Transaction("crt", [kv_set(0, 5, 1), kv_set(1, 5, 2, piece_index=1)])
        submit_and_run(system, crt)
        return system

    def test_report_covers_all_active_hosts(self, system):
        rows = traffic_report(system, window_ms=system.sim.now)
        hosts = {r["host"] for r in rows}
        assert "r0.n0" in hosts and "r0.mgr" in hosts
        assert all(r["sent_per_s"] >= 0 for r in rows)

    def test_dast_data_nodes_have_no_hotspot(self, system):
        ratio = hotspot_ratio(system, window_ms=system.sim.now, role_filter=".n")
        assert 0.5 < ratio < 3.0  # spread within a small factor of the mean

    def test_filter_selects_roles(self, system):
        rows = traffic_report(system, window_ms=system.sim.now)
        managers = [r for r in rows if ".mgr" in r["host"]]
        assert managers and all(r["received_per_s"] > 0 for r in managers)
