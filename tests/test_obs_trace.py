"""Causal tracing: span-tree construction, zero cost when detached, and
the separate trace-context byte lane (envelope schema v2)."""

import pytest

from repro.bench.harness import Trial, run_trial
from repro.fleet.spec import canonical_json
from repro.obs.trace import CausalTracer, build_traces
from repro.sim.rpc import ENVELOPE_VERSION, _Oneway, _Request, _Response
from repro.wire import TRACE_CTX_BYTES
from repro.workloads.tpcc import TpccWorkload


def small_trial(**kw):
    kw.setdefault("clients_per_region", 4)
    kw.setdefault("duration_ms", 1200.0)
    kw.setdefault("warmup_ms", 300.0)
    kw.setdefault("cooldown_ms", 200.0)
    return Trial("dast", lambda topo: TpccWorkload(topo), **kw)


class TestZeroCostWhenDetached:
    def test_results_byte_identical_with_tracing_on_vs_off(self):
        """The satellite-1 golden-digest guarantee: every latency, byte, and
        message count is identical whether causal tracing is attached or
        not — trace context rides a separate lane."""
        off = run_trial(small_trial())
        on = run_trial(small_trial(obs_causal=True))
        assert canonical_json(off.summary.as_row()) == \
            canonical_json(on.summary.as_row())

    def test_trace_bytes_live_in_their_own_lane(self):
        off = run_trial(small_trial())
        on = run_trial(small_trial(obs_causal=True))
        assert off.system.network.stats.trace_bytes_sent == 0
        stats = on.system.network.stats
        assert stats.trace_bytes_sent > 0
        # Every ctx-carrying send contributes exactly TRACE_CTX_BYTES.
        assert stats.trace_bytes_sent % TRACE_CTX_BYTES == 0
        assert stats.bytes_sent == off.system.network.stats.bytes_sent

    def test_envelope_wire_size_ignores_trace_ctx(self):
        """The byte model sees identical envelopes with or without a ctx."""
        ctx = ("t1", 7)
        assert _Oneway("m", None).wire_size() == _Oneway("m", None, ctx).wire_size()
        assert _Request(1, "m", None).wire_size() == \
            _Request(1, "m", None, ctx).wire_size()
        assert _Response(1, "m", True, None).wire_size() == \
            _Response(1, "m", True, None, ctx).wire_size()

    def test_envelope_schema_version_bumped(self):
        assert ENVELOPE_VERSION == 2
        assert TRACE_CTX_BYTES == 28  # container + 3 modelled scalars


class TestSpanTrees:
    @pytest.fixture(scope="class")
    def traced(self):
        result = run_trial(small_trial(obs_causal=True))
        return result, result.obs.traces()

    def test_every_committed_txn_yields_single_connected_tree(self, traced):
        result, traces = traced
        assert len(traces) > 100
        complete = [t for t in traces.values() if t.complete]
        assert complete
        for trace in complete:
            assert trace.orphans() == []
            ids = trace.span_ids()
            assert trace.root.span_id in ids
            for hop in trace.hops:
                assert hop.trace_id == trace.root.trace_id

    def test_hop_timings_are_causally_ordered(self, traced):
        _, traces = traced
        for trace in traces.values():
            for hop in trace.hops:
                if hop.t_recv is not None:
                    assert hop.t_recv >= hop.t_send
                    assert hop.dispatch >= hop.t_recv

    def test_response_hops_parent_to_their_request(self, traced):
        _, traces = traced
        checked = 0
        for trace in traces.values():
            by_id = {h.span_id: h for h in trace.hops}
            for hop in trace.hops:
                if not hop.method.startswith("resp:"):
                    continue
                parent = by_id.get(hop.parent_id)
                if parent is None:
                    continue  # parented to the root (coroutine-issued)
                assert parent.method == hop.method[len("resp:"):]
                assert parent.dst == hop.src
                checked += 1
        assert checked > 50

    def test_roots_cover_crt_and_irt(self, traced):
        _, traces = traced
        kinds = {bool(t.root.is_crt) for t in traces.values() if t.complete}
        assert kinds == {True, False}


class TestCausalTracerUnit:
    def test_root_retry_reuses_root_span(self):
        tracer = CausalTracer()
        a = tracer.begin_root("c", "t1", 0.0)
        b = tracer.begin_root("c", "t1", 5.0)
        assert a is b
        assert a.retries == 1

    def test_hop_fallback_parents_to_root(self):
        tracer = CausalTracer()
        tracer.begin_root("c", "t9", 0.0)

        class Payload:
            txn_id = "t9"

        ctx = tracer.begin_hop("c", "n", "submit", Payload())
        assert ctx is not None
        assert tracer.hops[-1].parent_id == tracer.roots["t9"].span_id

    def test_untraceable_payload_yields_no_hop(self):
        tracer = CausalTracer()
        assert tracer.begin_hop("a", "b", "pct_report", object()) is None
        assert tracer.hops == []

    def test_build_traces_drops_rootless_hops(self):
        tracer = CausalTracer()
        tracer.begin_root("c", "t1", 0.0)

        class Payload:
            txn_id = "t2"  # no root for t2

        tracer.begin_hop("c", "n", "submit", Payload())
        traces = build_traces(tracer)
        assert list(traces) == ["t1"]
        assert traces["t1"].hops == []
