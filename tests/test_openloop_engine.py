"""Open-loop engine behaviour: commits, coordinated-omission immunity, and
arrival-anchored observability (spans + critical paths)."""

import pytest

from repro.bench.harness import Trial, run_trial
from repro.bench.metrics import OpenLoopRecorder, percentile
from repro.config import Topology, TopologyConfig
from repro.core.system import DastSystem
from repro.obs.critical_path import attribution
from repro.obs.spans import assemble_spans
from repro.workloads.openloop import OpenLoopConfig, OpenLoopEngine
from repro.workloads.registry import workload_factory

_YCSB = {"theta": 0.7, "crt_ratio": 0.0, "read_ratio": 0.95, "ops_per_txn": 2}


def _trial(seed=1, duration=500.0, obs_causal=False, **open_loop) -> Trial:
    knobs = {"users_per_region": 1000, "txn_per_user_s": 3.0}
    knobs.update(open_loop)
    return Trial(
        "dast", workload_factory("ycsb", _YCSB),
        replication=1, clients_per_region=4,
        duration_ms=duration, warmup_ms=50.0, cooldown_ms=50.0, seed=seed,
        obs_causal=obs_causal, open_loop=knobs,
    )


class TestEngineBasics:
    def test_express_trial_commits_and_reports_open_loop_row(self):
        res = run_trial(_trial())
        engine = res.clients[0]
        assert engine.express  # DAST, replication 1, no tracer
        assert res.summary.committed > 500
        row = res.summary.as_row()
        assert row["open_loop"] is True
        assert row["arrivals"] > res.summary.committed * 0.9
        assert row["throughput_tps"] > 0
        # Traffic accounting flowed through the batched express tallies.
        stats = res.system.network.stats
        assert stats.per_type_sent.get("submit", 0) >= res.summary.committed
        assert stats.per_type_sent.get("resp:submit", 0) >= res.summary.committed

    def test_no_slots_leak_after_drain(self):
        res = run_trial(_trial())
        res.drain()  # stop the arrival pumps, let in-flight work finish
        engine = res.clients[0]
        assert not engine._pending  # every launched txn completed or failed
        assert engine.failed == 0

    def test_tracer_disables_express_but_trial_still_commits(self):
        res = run_trial(_trial(duration=400.0, obs_causal=True,
                               users_per_region=300))
        engine = res.clients[0]
        assert not engine.express
        assert res.summary.committed > 100


class TestCoordinatedOmission:
    def _run_with_stall(self, stall_ms: float):
        """A capped open-loop trial; region r0's nodes are seized for
        ``stall_ms`` mid-window.  Returns the recorder."""
        topo = Topology(TopologyConfig(
            num_regions=2, shards_per_region=2, replication=1,
            clients_per_region=4, seed=1))
        workload = workload_factory("ycsb", _YCSB)(topo)
        system = DastSystem(topo, workload.schemas(), workload.load, seed=1)
        recorder = OpenLoopRecorder(warm_start=50.0, warm_end=450.0)
        system.start()
        engine = OpenLoopEngine(
            system, workload,
            OpenLoopConfig(users_per_region=400, txn_per_user_s=2.0,
                           max_inflight_per_region=8),
            recorder)
        engine.start(until=500.0)
        if stall_ms:
            for host in topo.nodes_in_region("r0"):
                system.sim.schedule_abs(150.0, engine.stall, host, stall_ms)
        system.run(until=500.0)
        engine.flush_stats()
        return recorder

    def test_stalled_region_inflates_open_loop_p90_not_service_p90(self):
        """The coordinated-omission regression: a seized server fills the
        in-flight cap, so ~150ms of *arrivals* (a third of the window)
        queue client-side.  The intended-arrival-anchored latency absorbs
        the whole stall for all of them, while the submit-anchored
        (closed-loop-style) service latency only inflates for the <=cap
        txns caught in flight — below the p90 rank.  Measuring only
        service time would hide the outage entirely."""
        rec = self._run_with_stall(150.0)
        open_p90 = percentile(rec.open_latencies(region="r0"), 90)
        svc_p90 = percentile(rec.service_latencies(region="r0"), 90)
        assert open_p90 > 100.0, open_p90  # the stall shows up open-loop
        assert open_p90 > svc_p90 + 50.0, (open_p90, svc_p90)
        # The untouched region keeps a quiet tail.
        other = percentile(rec.open_latencies(region="r1"), 90)
        assert other < open_p90 / 2, (other, open_p90)

    def test_without_stall_open_and_service_tails_agree(self):
        rec = self._run_with_stall(0.0)
        open_p90 = percentile(rec.open_latencies(region="r0"), 90)
        svc_p90 = percentile(rec.service_latencies(region="r0"), 90)
        assert open_p90 < svc_p90 + 20.0, (open_p90, svc_p90)


class TestArrivalAnchoredObservability:
    @pytest.fixture(scope="class")
    def traced(self):
        """A capped, bursty, causally-traced open-loop trial: the cap binds
        during bursts, so some arrivals queue before submitting."""
        return run_trial(_trial(
            seed=2, duration=400.0, obs_causal=True,
            users_per_region=200, txn_per_user_s=3.0,
            model="mmpp", burst_mult=6.0, max_inflight_per_region=4))

    def test_spans_gain_queue_phase_and_telescope(self, traced):
        spans = assemble_spans(traced.obs.tracer)
        assert spans
        queued = [s for s in spans if s.phases.get("queue", 0.0) > 1e-9]
        assert queued, "cap never bound: no queued arrivals traced"
        for span in spans:
            assert "queue" in span.phases  # every open-loop span has one
            assert sum(span.phases.values()) == pytest.approx(span.total)
            assert span.phases["queue"] >= 0.0

    def test_critical_path_attributes_client_queue(self, traced):
        table = attribution(traced.obs.traces().values())
        assert table["txns"] > 0
        # The queue wait is *attributed*, not unexplained time.
        assert table["coverage"] >= 0.95
        segments = {r["segment"]: r for r in table["rows"]}
        assert "client-queue@client" in segments
        assert segments["client-queue@client"]["total_ms"] > 0

    def test_roots_anchored_at_intended_arrival(self, traced):
        """A queued txn's causal root opens at the intended arrival, so
        root.total equals the open-loop latency, not the service time."""
        tracer = traced.obs.tracer
        intended = {}
        for ev in tracer.events:
            if ev.kind == "arrival":
                intended[ev.txn_id] = ev.fields["intended"]
        anchored = 0
        for root in tracer.roots.values():
            want = intended.get(root.trace_id)
            if want is None:
                continue
            assert root.t0 == pytest.approx(want)
            anchored += 1
        assert anchored > 0
