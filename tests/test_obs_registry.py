"""Tests for the virtual-time metrics registry and the Stats shim."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, Series
from repro.util import Stats


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value == pytest.approx(3.0)


class TestHistogram:
    def test_bucket_bounds_are_geometric(self):
        h = Histogram("lat", start=1.0, growth=2.0, buckets=4)
        assert h.bounds == (1.0, 2.0, 4.0, 8.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram("h", start=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=0)

    def test_observe_routes_to_correct_bucket(self):
        h = Histogram("lat", start=1.0, growth=2.0, buckets=4)
        h.observe(0.5)   # underflow bucket (<= 1.0)
        h.observe(1.0)   # boundary: bucket covers (lo, hi], so still bucket 0
        h.observe(3.0)   # (2, 4]
        h.observe(100.0) # overflow
        assert h.counts == [2, 0, 1, 0, 1]
        assert h.n == 4
        assert h.vmin == 0.5 and h.vmax == 100.0

    def test_mean(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(2.0)

    def test_quantile_empty_is_zero(self):
        assert Histogram("lat").quantile(50) == 0.0

    def test_quantile_single_value_is_exact(self):
        h = Histogram("lat")
        h.observe(7.0)
        assert h.quantile(0) == pytest.approx(7.0)
        assert h.quantile(50) == pytest.approx(7.0)
        assert h.quantile(99) == pytest.approx(7.0)

    def test_quantile_within_relative_error(self):
        """Log buckets bound relative error by the growth factor."""
        h = Histogram("lat", start=0.05, growth=1.4, buckets=48)
        values = [0.1 * (i + 1) for i in range(1000)]  # 0.1 .. 100
        for v in values:
            h.observe(v)
        from repro.bench.metrics import percentile
        for p in (50, 90, 99):
            exact = percentile(values, p, interpolate=True)
            approx = h.quantile(p)
            assert approx == pytest.approx(exact, rel=0.4)

    def test_quantile_monotone_in_p(self):
        h = Histogram("lat")
        for i in range(200):
            h.observe(0.1 + i * 0.37)
        qs = [h.quantile(p) for p in (1, 25, 50, 75, 99)]
        assert qs == sorted(qs)
        assert qs[-1] <= h.vmax and qs[0] >= h.vmin


class TestSeries:
    def test_append_and_views(self):
        s = Series("q")
        s.append(1.0, 10)
        s.append(2.0, 20)
        assert s.times() == [1.0, 2.0]
        assert s.values() == [10.0, 20.0]
        assert s.last() == 20.0
        assert len(s) == 2

    def test_empty_last_is_none(self):
        assert Series("q").last() is None


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.timeseries("d") is reg.timeseries("d")

    def test_sample_uses_virtual_clock(self):
        clock = [0.0]
        reg = MetricsRegistry(now_fn=lambda: clock[0])
        reg.sample("depth", 3)
        clock[0] = 50.0
        reg.sample("depth", 5)
        assert reg.timeseries("depth").points == [(0.0, 3.0), (50.0, 5.0)]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("sent").inc(4)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(1.5)
        reg.sample("q", 9)
        snap = reg.snapshot()
        assert snap["counters"] == {"sent": 4.0}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"]["n"] == 1
        assert snap["histograms"]["lat"]["mean"] == pytest.approx(1.5)
        assert snap["series"]["q"] == [(0.0, 9.0)]


class TestStatsShim:
    def test_unbound_stats_unchanged(self):
        stats = Stats()
        stats.inc("executed")
        stats.inc("executed", 2)
        assert stats.get("executed") == 3
        assert not stats.bound

    def test_bind_replays_existing_counts(self):
        stats = Stats()
        stats.inc("executed", 5)
        reg = MetricsRegistry()
        stats.bind(reg, prefix="r0.n0.")
        assert reg.counter("r0.n0.executed").value == 5.0

    def test_bind_mirrors_future_increments(self):
        stats = Stats()
        reg = MetricsRegistry()
        stats.bind(reg, prefix="h.")
        stats.inc("sent", 3)
        assert stats.get("sent") == 3          # local dict still works
        assert reg.counter("h.sent").value == 3.0

    def test_unbind_stops_mirroring(self):
        stats = Stats()
        reg = MetricsRegistry()
        stats.bind(reg)
        stats.inc("a")
        stats.unbind()
        stats.inc("a")
        assert stats.get("a") == 2
        assert reg.counter("a").value == 1.0

    def test_merge_still_works(self):
        a, b = Stats(), Stats()
        a.inc("x")
        b.inc("x", 2)
        a.merge(b)
        assert a.get("x") == 3
