"""Unit tests for DAST's per-node bookkeeping (readyQ, waitQ, records)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock.hlc import Timestamp
from repro.core.records import ReadyQueue, TxnRecord, TxnStatus, WaitQueue
from repro.txn.model import Piece, Transaction


def txn(txn_id):
    return Transaction("t", [Piece(0, "s0", lambda ctx: None)], txn_id=txn_id)


def rec(txn_id, status=TxnStatus.PREPARED, is_crt=False):
    return TxnRecord(txn(txn_id), is_crt, "r0.n0", status=status)


def ts(t, frac=0, nid=0):
    return Timestamp(float(t), frac, nid)


class TestReadyQueue:
    def test_head_is_min_timestamp(self):
        q = ReadyQueue()
        q.insert(ts(30), rec("c"))
        q.insert(ts(10), rec("a"))
        q.insert(ts(20), rec("b"))
        assert q.head().txn_id == "a"

    def test_pop_in_order(self):
        q = ReadyQueue()
        for i, name in enumerate(["x", "y", "z"]):
            q.insert(ts(i), rec(name))
        assert [q.pop().txn_id for _ in range(3)] == ["x", "y", "z"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue().pop()

    def test_remove_skips_stale_heap_entry(self):
        q = ReadyQueue()
        q.insert(ts(1), rec("a"))
        q.insert(ts(2), rec("b"))
        q.remove("a")
        assert q.head().txn_id == "b"
        assert len(q) == 1
        assert "a" not in q

    def test_contains_and_get(self):
        q = ReadyQueue()
        r = rec("a")
        q.insert(ts(1), r)
        assert "a" in q
        assert q.get("a") is r
        assert q.get("nope") is None

    def test_records_sorted(self):
        q = ReadyQueue()
        q.insert(ts(5), rec("b"))
        q.insert(ts(1), rec("a"))
        assert [r.txn_id for r in q.records()] == ["a", "b"]

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_pop_sequence_always_sorted(self, entries):
        q = ReadyQueue()
        for i, (t, frac) in enumerate(entries):
            q.insert(ts(t, frac, i), rec(f"t{i}"))
        popped = [q.pop().ts for _ in range(len(entries))]
        assert popped == sorted(popped)


class TestWaitQueue:
    def test_min_over_entries(self):
        q = WaitQueue()
        q.insert("a", ts(30))
        q.insert("b", ts(10))
        assert q.min() == ts(10)

    def test_remove_reveals_next_min(self):
        q = WaitQueue()
        q.insert("a", ts(10))
        q.insert("b", ts(20))
        q.remove("a")
        assert q.min() == ts(20)
        q.remove("b")
        assert q.min() is None

    def test_update_rekeys_atomically(self):
        q = WaitQueue()
        q.insert("a", ts(10))
        q.update("a", ts(50))
        assert q.min() == ts(50)
        assert "a" in q and len(q) == 1

    def test_remove_missing_is_noop(self):
        q = WaitQueue()
        q.remove("ghost")
        assert q.min() is None

    def test_entries_snapshot(self):
        q = WaitQueue()
        q.insert("a", ts(1))
        snap = q.entries()
        snap["b"] = ts(2)
        assert "b" not in q

    @given(st.lists(st.tuples(st.sampled_from("abcde"), st.integers(0, 100),
                              st.booleans()), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_min_matches_reference_model(self, ops):
        q = WaitQueue()
        model = {}
        for key, t, is_remove in ops:
            if is_remove:
                q.remove(key)
                model.pop(key, None)
            else:
                q.insert(key, ts(t))
                model[key] = ts(t)
            expected = min(model.values()) if model else None
            assert q.min() == expected


class TestTxnRecord:
    def test_input_ready_tracking(self):
        r = rec("a")
        r.needed = frozenset({"x", "y"})
        assert not r.input_ready()
        r.inputs["x"] = 1
        assert not r.input_ready()
        r.inputs["y"] = 2
        assert r.input_ready()

    def test_no_needs_is_ready(self):
        assert rec("a").input_ready()

    def test_repr_mentions_status(self):
        assert "prepared" in repr(rec("a"))


class TestReadyQueueCacheAndCompaction:
    def test_records_cached_view_is_a_copy(self):
        q = ReadyQueue()
        q.insert(ts(2), rec("b"))
        q.insert(ts(1), rec("a"))
        first = q.records()
        first.append("junk")
        assert [r.txn_id for r in q.records()] == ["a", "b"]

    def test_records_cache_invalidated_by_mutation(self):
        q = ReadyQueue()
        q.insert(ts(2), rec("b"))
        assert [r.txn_id for r in q.records()] == ["b"]
        q.insert(ts(1), rec("a"))
        assert [r.txn_id for r in q.records()] == ["a", "b"]
        q.remove("b")
        assert [r.txn_id for r in q.records()] == ["a"]
        q.pop()
        assert q.records() == []

    def test_compaction_drops_stale_entries_preserving_order(self):
        q = ReadyQueue()
        # Far past the compaction threshold: every reinsert strands a stale
        # heap entry, so the heap would grow ~4x the live membership.
        for i in range(200):
            q.insert(ts(i), rec(f"t{i}"))
        for i in range(200):
            q.insert(ts(1000 + (199 - i)), q.get(f"t{i}"))  # reschedule all
        for i in range(200):
            q.insert(ts(2000 + i), q.get(f"t{i}"))  # and again
        assert len(q) == 200
        assert len(q._heap) < 450  # stale entries were compacted away
        popped = [q.pop().txn_id for _ in range(200)]
        assert popped == [f"t{i}" for i in range(200)]

    def test_head_after_heavy_remove_churn(self):
        q = ReadyQueue()
        for i in range(150):
            q.insert(ts(i), rec(f"t{i}"))
        for i in range(149):
            q.remove(f"t{i}")
        assert q.head().txn_id == "t149"
        assert len(q._heap) < 10


class TestWaitQueueCompaction:
    def test_min_after_churn(self):
        q = WaitQueue()
        for i in range(200):
            q.insert(f"k{i}", ts(i))
        for i in range(200):
            q.insert(f"k{i}", ts(500 + i))  # re-key everything upward
        assert q.min() == ts(500)
        assert len(q._heap) < 300
