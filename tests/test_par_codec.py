"""The cross-partition frame codec: closures over the wire.

The process backend ships wire frames whose transactions carry piece
bodies — closures built by the workload generators — which stdlib pickle
refuses.  These tests pin the codec's two paths (by-reference for
importable functions, marshal rebuild for closures) and that a real
workload transaction round-trips executably.
"""

import pickle

import pytest

from repro.sim.par import codec


def module_level_helper(x, y=2):
    return x * y


def make_adder(n, scale=1):
    def adder(value, bump=10):
        return (value + n) * scale + bump
    return adder


class TestImportableFunctions:
    def test_round_trips_by_reference(self):
        fn = codec.loads(codec.dumps(module_level_helper))
        assert fn is module_level_helper

    def test_stdlib_pickle_equivalence(self):
        # The by-reference path must produce what stdlib pickle would, so
        # ordinary payloads (no closures) stay interchangeable.
        assert codec.loads(pickle.dumps(module_level_helper)) is \
            codec.loads(codec.dumps(module_level_helper))


class TestClosures:
    def test_stdlib_refuses_what_the_codec_ships(self):
        adder = make_adder(5)
        with pytest.raises(Exception):
            pickle.dumps(adder)
        rebuilt = codec.loads(codec.dumps(adder))
        assert rebuilt(1) == adder(1) == 16

    def test_cells_defaults_and_kwdefaults_survive(self):
        adder = make_adder(3, scale=4)
        rebuilt = codec.loads(codec.dumps(adder))
        assert rebuilt(2) == adder(2) == 30
        assert rebuilt(2, bump=0) == adder(2, bump=0) == 20
        assert rebuilt.__name__ == "adder"
        assert "<locals>" in rebuilt.__qualname__

    def test_rebuilt_closure_sees_module_globals(self):
        def caller(v):
            return module_level_helper(v) + 1

        # Local function (no closure, but "<locals>" qualname): must ship
        # by value and still resolve its module-global helper.
        rebuilt = codec.loads(codec.dumps(caller))
        assert rebuilt(4) == caller(4) == 9

    def test_lambda_round_trips(self):
        double = lambda v: v * 2  # noqa: E731
        assert codec.loads(codec.dumps(double))(21) == 42

    def test_nested_containers(self):
        payload = {"fns": [make_adder(1), make_adder(2)], "n": 7}
        out = codec.loads(codec.dumps(payload))
        assert out["n"] == 7
        assert [f(0) for f in out["fns"]] == [11, 12]


class TestWorkloadTransactions:
    def test_tpcc_transaction_bodies_round_trip(self):
        from repro.config import Topology, TopologyConfig
        from repro.workloads.tpcc import TpccWorkload

        topo = Topology(TopologyConfig(num_regions=2, shards_per_region=2,
                                       clients_per_region=2))
        workload = TpccWorkload(topo)
        binding = workload.bind_clients()[0]
        import random
        txn = workload.next_transaction(binding, random.Random(3))
        out = codec.loads(codec.dumps(txn))
        assert out.txn_id == txn.txn_id
        assert [p.index for p in out.pieces] == [p.index for p in txn.pieces]
        assert all(callable(p.body) for p in out.pieces)
