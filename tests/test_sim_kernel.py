"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import AllOf, AnyOf, Event, Process, ProcessInterrupted, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_delay(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_same_instant_callbacks_fifo(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(1.0, seen.append, i)
        sim.run()
        assert seen == list(range(10))

    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(10.0, seen.append, "late")
        sim.run(until=5.0)
        assert seen == []
        assert sim.now == 5.0
        sim.run()
        assert seen == ["late"]

    def test_run_until_advances_time_even_when_idle(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_repeated_run_until_is_monotonic(self, sim):
        sim.run(until=10.0)
        sim.run(until=20.0)
        assert sim.now == 20.0

    def test_stop_halts_run(self, sim):
        seen = []

        def first():
            seen.append("a")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a"]
        assert sim.now == 1.0
        sim.run()
        assert seen == ["a", "b"]

    def test_call_soon_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(3.0, lambda: sim.call_soon(seen.append, sim.now))
        sim.run()
        assert seen == [3.0]

    def test_pending_events_counts_heap(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(99)
        sim.run()
        assert seen == [99]

    def test_double_trigger_is_error(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callback_after_trigger_still_fires(self, sim):
        ev = sim.event()
        ev.succeed("v")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["v"]

    def test_timeout_event_value(self, sim):
        ev = sim.timeout(7.0, value="done")
        seen = []
        ev.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(7.0, "done")]


class TestProcesses:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "result"

        p = sim.spawn(proc())
        sim.run()
        assert p.ok and p.value == "result"

    def test_process_receives_event_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value=41)
            return got + 1

        p = sim.spawn(proc())
        sim.run()
        assert p.value == 42

    def test_process_exception_fails_event(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        p = sim.spawn(proc())
        sim.run()
        assert not p.ok
        assert isinstance(p.exception, ValueError)

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))
            return "survived"

        p = sim.spawn(proc())
        sim.schedule(1.0, ev.fail, RuntimeError("remote"))
        sim.run()
        assert caught == ["remote"]
        assert p.value == "survived"

    def test_join_another_process(self, sim):
        def worker():
            yield sim.timeout(5.0)
            return 10

        def parent():
            value = yield sim.spawn(worker())
            return value * 2

        p = sim.spawn(parent())
        sim.run()
        assert p.value == 20
        assert sim.now == 5.0

    def test_yield_non_event_fails(self, sim):
        def proc():
            yield 42

        p = sim.spawn(proc())
        sim.run()
        assert not p.ok
        assert isinstance(p.exception, SimulationError)

    def test_interrupt_cancels(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(True)

        p = sim.spawn(proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert cleaned == [True]
        assert not p.ok
        assert isinstance(p.exception, ProcessInterrupted)

    def test_interrupt_after_finish_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "ok"

        p = sim.spawn(proc())
        sim.run()
        p.interrupt()
        assert p.ok and p.value == "ok"


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        events = [sim.timeout(3.0, "a"), sim.timeout(1.0, "b"), sim.timeout(2.0, "c")]
        combined = sim.all_of(events)
        seen = []
        combined.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(3.0, ["a", "b", "c"])]

    def test_all_of_empty_succeeds_immediately(self, sim):
        combined = sim.all_of([])
        assert combined.triggered and combined.value == []

    def test_all_of_fails_on_first_failure(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])
        sim.schedule(1.0, bad.fail, RuntimeError("x"))
        sim.run()
        assert combined.triggered and not combined.ok

    def test_any_of_first_wins(self, sim):
        slow = sim.timeout(10.0, "slow")
        fast = sim.timeout(2.0, "fast")
        combined = sim.any_of([slow, fast])
        seen = []
        combined.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(2.0, "fast")]

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def proc(name, delay):
                for i in range(3):
                    yield sim.timeout(delay)
                    trace.append((sim.now, name, i))

            sim.spawn(proc("a", 1.5))
            sim.spawn(proc("b", 2.0))
            sim.run()
            return trace

        assert run_once() == run_once()


class TestEvery:
    def test_ticks_at_fixed_interval(self, sim):
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_interrupt_stops_timer(self, sim):
        ticks = []
        proc = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run(until=25.0)
        proc.interrupt()
        sim.run(until=100.0)
        assert ticks == [10.0, 20.0]

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(-1.0, lambda: None)


class TestScheduleAt:
    def test_schedule_at_fires_at_absolute_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: sim.schedule_at(20.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [20.0]

    def test_schedule_at_past_time_fires_immediately(self, sim):
        seen = []

        def late():
            sim.schedule_at(3.0, lambda: seen.append(sim.now))  # already past

        sim.schedule(10.0, late)
        sim.run()
        assert seen == [10.0]
