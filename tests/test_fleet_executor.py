"""FleetExecutor: cross-process determinism, ordering, failures, caching.

The determinism guard is the load-bearing test of the fleet contract:
the *same* TrialSpec executed in this process, in a spawn-context worker,
or served from the on-disk cache must serialize to byte-identical
deterministic blobs.  Everything `repro experiment --jobs N` promises
("parallel rows identical to serial rows") reduces to this property.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    FleetError,
    FleetExecutor,
    ResultCache,
    TrialFailure,
    TrialOutcome,
    TrialSpec,
    run_spec,
    run_specs,
)

def small_spec(**overrides) -> TrialSpec:
    base = dict(
        system="dast", workload="tpca",
        workload_params={"theta": 0.5, "crt_ratio": 0.2},
        num_regions=2, shards_per_region=1, clients_per_region=2,
        duration_ms=1500.0, warmup_ms=300.0, cooldown_ms=100.0, seed=5,
    )
    base.update(overrides)
    return TrialSpec(**base)


class TestCrossProcessDeterminism:
    def test_worker_results_byte_identical_to_in_process(self):
        """Same spec, fresh spawn worker vs this (already warm) process:
        the deterministic blobs must match byte for byte."""
        specs = [small_spec(), small_spec(system="janus")]
        inline = [run_spec(s) for s in specs]
        pooled = FleetExecutor(jobs=2).run(specs)
        for spec, a, b in zip(specs, inline, pooled):
            assert isinstance(b, TrialOutcome), b
            assert a.deterministic_blob() == b.deterministic_blob(), spec.display_label()

    def test_results_come_back_in_submission_order(self):
        specs = [small_spec(seed=s) for s in (11, 12, 13)]
        results = FleetExecutor(jobs=2).run(specs)
        assert [r.fingerprint for r in results] == [s.fingerprint() for s in specs]


class TestCaching:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        specs = [small_spec(), small_spec(seed=6)]
        first = FleetExecutor(jobs=1, cache=cache).run(specs)
        second = FleetExecutor(jobs=1, cache=cache).run(specs)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert a.deterministic_blob() == b.deterministic_blob()
            # Same *iteration order* too (no sort_keys here on purpose):
            # a live row and a cache-deserialised row must render
            # identically, nested dicts included.
            assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
        assert cache.stats() == {"hits": 2, "misses": 2, "stores": 2}

    def test_refresh_reexecutes_despite_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec()
        FleetExecutor(jobs=1, cache=cache).run([spec])
        again = FleetExecutor(jobs=1, cache=cache, refresh=True).run([spec])
        assert not again[0].cached
        assert cache.stats()["hits"] == 0 and cache.stats()["stores"] == 2

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        spec = small_spec(hook="debug_error")
        FleetExecutor(jobs=1, cache=cache).run([spec])
        assert cache.stats()["stores"] == 0
        assert cache.get(spec) is None


class TestFailureCapture:
    def test_inline_error_yields_structured_failure(self):
        spec = small_spec(hook="debug_error", hook_params={"message": "boom-7"})
        result = FleetExecutor(jobs=1).run([spec])[0]
        assert isinstance(result, TrialFailure)
        assert result.kind == "error" and "boom-7" in result.message
        assert "debug_error" in result.traceback_text

    def test_worker_error_yields_structured_failure(self):
        spec = small_spec(hook="debug_error", hook_params={"message": "boom-8"})
        result = FleetExecutor(jobs=2).run([spec])[0]
        assert isinstance(result, TrialFailure)
        assert result.kind == "error" and "boom-8" in result.message

    def test_dead_worker_yields_crash_not_hang(self):
        spec = small_spec(hook="debug_crash")
        result = FleetExecutor(jobs=2).run([spec])[0]
        assert isinstance(result, TrialFailure)
        assert result.kind == "crash"

    def test_wedged_worker_yields_timeout(self):
        spec = small_spec(hook="debug_sleep", hook_params={"seconds": 120.0})
        result = FleetExecutor(jobs=2, timeout_s=4.0).run([spec])[0]
        assert isinstance(result, TrialFailure)
        assert result.kind == "timeout"

    def test_failure_does_not_poison_other_trials(self):
        specs = [small_spec(), small_spec(hook="debug_error"), small_spec(seed=6)]
        results = FleetExecutor(jobs=1).run(specs)
        assert [r.ok for r in results] == [True, False, True]

    def test_run_specs_strict_raises_after_full_sweep(self):
        specs = [small_spec(), small_spec(hook="debug_error")]
        with pytest.raises(FleetError, match="1 trial\\(s\\) failed"):
            run_specs(specs)
        results = run_specs(specs, strict=False)
        assert results[0].ok and not results[1].ok

    def test_bad_spec_fails_fast_before_dispatch(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            FleetExecutor(jobs=1).run([small_spec(), small_spec(workload="nope")])


class TestObservability:
    def test_counters_and_progress_lines(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        lines = []
        spec = small_spec()
        FleetExecutor(jobs=1, cache=cache, progress=lines.append).run([spec])
        fleet = FleetExecutor(jobs=1, cache=cache, progress=lines.append)
        fleet.run([spec, small_spec(hook="debug_error")])
        assert fleet.registry.counter("fleet_trials_done").value == 2
        assert fleet.registry.counter("fleet_cache_hits").value == 1
        assert fleet.registry.counter("fleet_failures").value == 1
        assert any("cached" in line for line in lines)
        assert any("ERROR" in line for line in lines)
