"""Fault injection under the partitioned kernel, and the eligibility gate.

A PAR-safe fault plan (membership and partition faults, applied at
control-kernel instants where every partition is synchronized) must
produce the *same chaos report, byte for byte* under the lockstep backend
as under the serial kernel — with the serializability auditor passing on
both.  Plans that couple partitions through the shared network RNG
(drops, jitter, reorder, duplication) must fall back to serial with a
named reason; :class:`TestResolveMode` pins the whole decision table.
"""

import hashlib

import pytest

from repro.bench.harness import Trial
from repro.chaos.plan import FaultPlan
from repro.chaos.runner import run_chaos_trial
from repro.config import TimingConfig
from repro.sim.par import (MODE_LOCKSTEP, MODE_SERIAL, MODE_THREADS,
                           resolve_mode)
from repro.workloads.tpca import TpcaWorkload


def _crash_partition_plan() -> FaultPlan:
    return (FaultPlan(name="crash+partition")
            .add(300.0, "crash_node", host="r1.n1")
            .add(500.0, "partition_regions", r1="r1", r2="r2")
            .add(900.0, "heal_regions", r1="r1", r2="r2")
            .add(1100.0, "fail_manager", region="r2"))


def _report_digest(report) -> str:
    return hashlib.sha256(report.to_text().encode()).hexdigest()


class TestChaosUnderPartitions:
    # duration must clear the harness's default 1500ms warmup, or the
    # recorder never sees a committed transaction.
    KWARGS = dict(system="dast", workload="tpca", num_regions=3,
                  shards_per_region=1, clients_per_region=2,
                  duration_ms=2500.0, drain_ms=2000.0, seed=5,
                  request_timeout=800.0)

    @pytest.fixture(scope="class")
    def pair(self):
        serial = run_chaos_trial(_crash_partition_plan(), **self.KWARGS)
        par = run_chaos_trial(_crash_partition_plan(), parallel_regions=3,
                              **self.KWARGS)
        return serial, par

    def test_reports_byte_identical(self, pair):
        serial, par = pair
        assert _report_digest(serial) == _report_digest(par)

    def test_faults_applied_and_audit_ok(self, pair):
        serial, par = pair
        for report in pair:
            assert report.faults_applied == 4
            assert report.ok, report.to_text()
            assert report.audit is not None and report.audit.ok
        assert serial.committed == par.committed > 0

    def test_process_request_demotes_and_stays_byte_identical(self, pair):
        # An explicit process backend never widens eligibility: the fault
        # plan demotes it to lockstep, and the chaos report stays byte
        # identical to serial.
        serial, _ = pair
        proc = run_chaos_trial(_crash_partition_plan(), parallel_regions=3,
                               parallel_backend="process", **self.KWARGS)
        assert _report_digest(serial) == _report_digest(proc)


def _trial(**over) -> Trial:
    defaults = dict(num_regions=3, shards_per_region=1, clients_per_region=2)
    defaults.update(over)
    system = defaults.pop("system", "dast")
    return Trial(system, TpcaWorkload, **defaults)


class TestResolveMode:
    def test_not_requested(self):
        assert resolve_mode(_trial(), 0) == (MODE_SERIAL, None)
        assert resolve_mode(_trial(), 1) == (MODE_SERIAL, None)

    def test_single_region_declines(self):
        mode, reason = resolve_mode(_trial(num_regions=1), 3)
        assert mode == MODE_SERIAL and "single-region" in reason

    def test_non_dast_declines(self):
        mode, reason = resolve_mode(_trial(system="tapir"), 3)
        assert mode == MODE_SERIAL and "tapir" in reason

    def test_random_drops_decline(self):
        trial = _trial(timing=TimingConfig(drop_probability=0.05))
        mode, reason = resolve_mode(trial, 3)
        assert mode == MODE_SERIAL and "RNG" in reason

    def test_hooks_decline(self):
        mode, reason = resolve_mode(_trial(), 3, hooks=True)
        assert mode == MODE_SERIAL and "hooks" in reason

    def test_safe_fault_plan_demotes_to_lockstep(self):
        trial = _trial(fault_plan=_crash_partition_plan())
        assert resolve_mode(trial, 3) == (MODE_LOCKSTEP, None)

    def test_rng_coupled_fault_plan_declines(self):
        plan = FaultPlan().add(100.0, "set_jitter", jitter=2.0)
        mode, reason = resolve_mode(_trial(fault_plan=plan), 3)
        assert mode == MODE_SERIAL and "set_jitter" in reason

    def test_observability_demotes_to_lockstep(self):
        assert resolve_mode(_trial(obs=True), 3) == (MODE_LOCKSTEP, None)
        assert resolve_mode(_trial(obs_causal=True), 3) == (MODE_LOCKSTEP, None)

    def test_fault_free_untraced_runs_threaded(self):
        assert resolve_mode(_trial(), 3) == (MODE_THREADS, None)


class TestResolveBackend:
    """The ``parallel_backend`` knob narrows but never widens eligibility."""

    def test_unknown_backend_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown parallel backend"):
            resolve_mode(_trial(parallel_backend="greenlets"), 3)

    def test_explicit_serial_names_itself(self):
        mode, reason = resolve_mode(_trial(parallel_backend="serial"), 3)
        assert mode == MODE_SERIAL and "explicitly requested" in reason

    def test_explicit_backends_select_mode(self):
        from repro.sim.par import MODE_PROCESS

        assert resolve_mode(_trial(parallel_backend="lockstep"), 3) == \
            (MODE_LOCKSTEP, None)
        assert resolve_mode(_trial(parallel_backend="threads"), 3) == \
            (MODE_THREADS, None)
        assert resolve_mode(_trial(parallel_backend="process"), 3) == \
            (MODE_PROCESS, None)

    def test_process_request_never_widens(self):
        # Faults and observability demote to lockstep regardless of the
        # requested backend; RNG-coupled plans still fall back to serial.
        trial = _trial(fault_plan=_crash_partition_plan(),
                       parallel_backend="process")
        assert resolve_mode(trial, 3) == (MODE_LOCKSTEP, None)
        trial = _trial(obs=True, parallel_backend="process")
        assert resolve_mode(trial, 3) == (MODE_LOCKSTEP, None)
        plan = FaultPlan().add(100.0, "set_jitter", jitter=2.0)
        mode, reason = resolve_mode(
            _trial(fault_plan=plan, parallel_backend="process"), 3)
        assert mode == MODE_SERIAL and "set_jitter" in reason

    def test_subshard_eligibility(self):
        from repro.sim.par import MODE_PROCESS

        # Single region with >= 2 shards sub-region shards; the backend
        # knob picks the executor.
        eligible = _trial(num_regions=1, shards_per_region=3,
                          parallel_backend="process")
        assert resolve_mode(eligible, 3) == (MODE_PROCESS, None)
        assert resolve_mode(
            _trial(num_regions=1, shards_per_region=3), 3) == \
            (MODE_THREADS, None)
        # Open-loop trials bypass the per-message network; they decline.
        mode, reason = resolve_mode(
            _trial(num_regions=1, shards_per_region=3,
                   open_loop={"users_per_region": 10,
                              "txn_per_user_s": 1.0}), 3)
        assert mode == MODE_SERIAL and "closed-loop only" in reason
        # Fault plans on a single region fall back to serial entirely
        # (the shared control plane lives inside the one region).
        mode, reason = resolve_mode(
            _trial(num_regions=1, shards_per_region=3,
                   fault_plan=_crash_partition_plan()), 3)
        assert mode == MODE_SERIAL and "fault handlers" in reason
