"""Tests for metrics reduction, the harness, features table, and reporting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.features import FEATURE_MATRIX, IMPLEMENTED, feature_rows
from repro.bench.harness import SYSTEMS, Trial, run_trial
from repro.bench.metrics import LatencyRecorder, percentile
from repro.bench.report import format_series, format_table
from repro.txn.result import TxnResult
from repro.workloads.tpca import TpcaWorkload


def result(latency=10.0, finish=1000.0, crt=False, committed=True, txn_type="t",
           retries=0, phases=None):
    r = TxnResult("tx", txn_type, committed, crt, retries=retries, phases=phases)
    r.submit_time = finish - latency
    r.finish_time = finish
    return r


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_median_and_p99(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_an_element_and_monotone(self, values):
        p50 = percentile(values, 50)
        p99 = percentile(values, 99)
        assert p50 in values and p99 in values
        assert p50 <= p99


class TestInterpolatedPercentile:
    """Pins both conventions: nearest-rank (default) vs linear interpolation."""

    def test_even_count_median_differs(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0                       # nearest-rank
        assert percentile(values, 50, interpolate=True) == 2.5     # midpoint

    def test_known_quartiles(self):
        values = [10.0, 20.0, 30.0, 40.0]
        # rank = p/100 * (n-1) = 0.75 -> between 10 and 20 at 0.75
        assert percentile(values, 25, interpolate=True) == pytest.approx(17.5)
        assert percentile(values, 75, interpolate=True) == pytest.approx(32.5)

    def test_endpoints_exact(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0, interpolate=True) == 1.0
        assert percentile(values, 100, interpolate=True) == 9.0

    def test_out_of_range_p_clamped(self):
        values = [1.0, 2.0]
        assert percentile(values, 150, interpolate=True) == 2.0
        assert percentile(values, -10, interpolate=True) == 1.0

    def test_single_value_and_empty(self):
        assert percentile([7.0], 99, interpolate=True) == 7.0
        assert percentile([], 50, interpolate=True) == 0.0

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100),
           st.floats(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_interpolated_stays_within_range(self, values, p):
        q = percentile(values, p, interpolate=True)
        assert min(values) <= q <= max(values)


class TestLatencyRecorder:
    def test_warm_window_filters(self):
        rec = LatencyRecorder(warm_start=100.0, warm_end=200.0)
        rec.record(result(finish=50.0))
        rec.record(result(finish=150.0))
        rec.record(result(finish=250.0))
        assert len(rec.results) == 1
        assert rec.all_count == 3

    def test_summary_splits_irt_crt(self):
        rec = LatencyRecorder()
        for i in range(10):
            rec.record(result(latency=10.0, finish=100.0 + i))
            rec.record(result(latency=200.0, finish=100.0 + i, crt=True))
        summary = rec.summarize("x")
        assert summary.irt_median == pytest.approx(10.0)
        assert summary.crt_median == pytest.approx(200.0)
        assert summary.committed == 20

    def test_abort_rate(self):
        rec = LatencyRecorder()
        rec.record(result(committed=False, finish=10))
        rec.record(result(finish=11))
        summary = rec.summarize("x")
        assert summary.abort_rate == pytest.approx(0.5)

    def test_cdf_monotone_and_complete(self):
        rec = LatencyRecorder()
        for i in range(50):
            rec.record(result(latency=float(i + 1), finish=100.0 + i))
        cdf = rec.cdf(crt=False, points=10)
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_timeseries_buckets(self):
        rec = LatencyRecorder()
        for t in (100.0, 150.0, 600.0):
            rec.record(result(latency=5.0, finish=t))
        series = rec.timeseries(bucket_ms=500.0)
        assert len(series) == 2
        assert series[0]["throughput_tps"] == pytest.approx(4.0)  # 2 in 0.5s

    def test_phase_breakdown_split_by_dependency(self):
        rec = LatencyRecorder()
        rec.record(result(crt=True, finish=10, latency=200.0,
                          phases={"remote_prepare": 100.0, "has_dep": 1.0,
                                  "wait_input": 80.0}))
        rec.record(result(crt=True, finish=11, latency=210.0,
                          phases={"remote_prepare": 105.0, "has_dep": 0.0,
                                  "wait_output": 95.0}))
        with_dep = rec.phase_breakdown(with_dependency=True)
        without = rec.phase_breakdown(with_dependency=False)
        assert with_dep["count"] == 1 and with_dep["wait_input"] == pytest.approx(80.0)
        assert without["count"] == 1 and without["wait_output"] == pytest.approx(95.0)


class TestHarness:
    def test_all_four_systems_registered(self):
        assert set(SYSTEMS) == {"dast", "janus", "tapir", "slog"}

    @pytest.mark.parametrize("system", ["dast", "janus", "tapir", "slog"])
    def test_run_trial_produces_traffic(self, system):
        trial = Trial(
            system, lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.1),
            num_regions=2, shards_per_region=1, clients_per_region=2,
            duration_ms=3000.0, warmup_ms=500.0,
        )
        result = run_trial(trial)
        assert result.summary.throughput > 0
        assert result.summary.irt_median > 0

    def test_drain_quiesces(self):
        trial = Trial(
            "dast", lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.2),
            num_regions=2, shards_per_region=1, clients_per_region=2,
            duration_ms=2000.0, warmup_ms=200.0,
        )
        result = run_trial(trial)
        result.drain()
        for node in result.system.nodes.values():
            assert len(node.ready_q) == 0

    def test_obs_trial_exposes_bundle(self):
        trial = Trial(
            "dast", lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.2),
            num_regions=2, shards_per_region=1, clients_per_region=2,
            duration_ms=2000.0, warmup_ms=200.0, obs=True,
        )
        result = run_trial(trial)
        assert result.obs is not None
        assert result.obs.spans()
        assert len(result.obs.registry.timeseries("stretch_count")) > 0

    def test_unobserved_trial_has_no_bundle(self):
        trial = Trial(
            "dast", lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.1),
            num_regions=2, shards_per_region=1, clients_per_region=2,
            duration_ms=1500.0, warmup_ms=200.0,
        )
        result = run_trial(trial)
        assert result.obs is None
        assert result.system.tracer is None

    def test_seeded_trials_are_reproducible(self):
        def run_once():
            trial = Trial(
                "dast", lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.1),
                num_regions=2, shards_per_region=1, clients_per_region=2,
                duration_ms=2000.0, warmup_ms=200.0, seed=7,
            )
            return run_trial(trial).summary.as_row()

        assert run_once() == run_once()


class TestFeatures:
    def test_dast_is_the_only_full_row(self):
        for system, flags in FEATURE_MATRIX.items():
            full = all(flags.values())
            assert full == (system == "dast")

    def test_implemented_systems_present(self):
        assert set(IMPLEMENTED) <= set(FEATURE_MATRIX)

    def test_rows_render(self):
        rows = feature_rows()
        text = format_table(rows, ["system", "serializable", "r1", "r2", "r3"])
        assert "dast" in text and "slog" in text


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1.2345, "b": "x"}, {"a": 22.0, "b": "longer"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2  # header/body aligned

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series(self):
        text = format_series({"dast": [{"x": 1}], "janus": [{"x": 2}]})
        assert "== dast ==" in text and "== janus ==" in text
