"""Drain must flush open batch windows before the post-drain audit.

Regression test: with ``batch_window > 0`` an Endpoint can be holding
batchable messages in an open per-destination window when the clients
stop.  ``TrialResult.drain`` must disable coalescing and flush every
pending buffer so ``repro audit --batching on`` never misses tail
messages that were still sitting in a window.
"""

from repro.bench.auditor import audit_dast_run
from repro.bench.harness import Trial, run_trial
from repro.workloads.tpca import TpcaWorkload


def batched_trial(**overrides) -> Trial:
    base = dict(
        num_regions=2, shards_per_region=1, clients_per_region=2,
        duration_ms=2500.0, warmup_ms=300.0, cooldown_ms=100.0, seed=2,
        batch_window=1.25,
    )
    base.update(overrides)
    return Trial("dast", lambda topo: TpcaWorkload(topo, theta=0.5, crt_ratio=0.2),
                 **base)


class TestDrainFlushesBatches:
    def test_network_registers_every_endpoint(self):
        result = run_trial(batched_trial())
        network = result.system.network
        assert network.endpoints, "endpoints must self-register for drain sweeps"
        assert len({e.host for e in network.endpoints}) == len(network.endpoints)

    def test_drain_empties_all_batch_buffers(self):
        result = run_trial(batched_trial())
        result.drain()
        for endpoint in result.system.network.endpoints:
            assert endpoint.batch_window == 0.0
            assert not endpoint._batch_buf, endpoint.host

    def test_audit_passes_with_batching_on(self):
        result = run_trial(batched_trial())
        result.drain()
        report = audit_dast_run(result.system)
        assert report.ok, report

    def test_flush_delivers_held_frames(self):
        """A message parked in an open window must reach the wire on flush,
        not be dropped with the buffer."""
        result = run_trial(batched_trial())
        network = result.system.network
        endpoint = next(e for e in network.endpoints if e.batch_window > 0)
        sent_before = network.stats.messages_sent
        held = sum(len(buf) for buf in endpoint._batch_buf.values())
        endpoint.flush()
        assert not endpoint._batch_buf
        if held:
            assert network.stats.messages_sent > sent_before
