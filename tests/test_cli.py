"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "dast" and args.workload == "tpcc"

    def test_experiment_names_parsed(self):
        args = build_parser().parse_args(["experiment", "fig2", "table3"])
        assert args.names == ["fig2", "table3"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig5", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig10a", "fig10b", "ablations",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_trace_out_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.system == "dast"
        assert args.out is None and args.csv_dir is None
        assert args.interval == 50.0


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--system", "dast", "--workload", "tpca",
                     "--regions", "2", "--shards-per-region", "1",
                     "--clients", "2", "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput_tps" in out and "dast" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["experiment", "fig999"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_audit_reports_ok(self, capsys):
        code = main(["audit", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AuditReport(ok)" in out

    def test_run_trace_out_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        code = main(["run", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500", "--trace-out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out and "== probes ==" in out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records and records[0]["type"] == "meta"
        assert any(r["type"] == "span" for r in records)

    def test_obs_command_prints_report(self, capsys, tmp_path):
        code = main(["obs", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500", "--csv-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out
        assert (tmp_path / "spans.csv").exists()
        assert (tmp_path / "probes.csv").exists()
