"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "dast" and args.workload == "tpcc"

    def test_experiment_names_parsed(self):
        args = build_parser().parse_args(["experiment", "fig2", "table3"])
        assert args.names == ["fig2", "table3"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig5", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig10a", "fig10b", "ablations",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_trace_out_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.system == "dast"
        assert args.out is None and args.csv_dir is None
        assert args.interval == 50.0

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.system == "dast"
        assert args.plan is None and args.fuzz == 0
        assert args.shrink is True and args.shrink_budget == 48
        assert args.drain_ms == 6000.0


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--system", "dast", "--workload", "tpca",
                     "--regions", "2", "--shards-per-region", "1",
                     "--clients", "2", "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput_tps" in out and "dast" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["experiment", "fig999"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_audit_reports_ok(self, capsys):
        code = main(["audit", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AuditReport(ok)" in out

    def test_run_trace_out_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        code = main(["run", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500", "--trace-out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out and "== probes ==" in out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records and records[0]["type"] == "meta"
        assert any(r["type"] == "span" for r in records)

    def test_obs_command_prints_report(self, capsys, tmp_path):
        code = main(["obs", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500", "--csv-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out
        assert (tmp_path / "spans.csv").exists()
        assert (tmp_path / "probes.csv").exists()


CHAOS_TRIAL = ["--workload", "tpca", "--regions", "2", "--shards-per-region", "1",
               "--clients", "2", "--duration-ms", "2000", "--drain-ms", "4000"]


class TestChaosCommand:
    def test_emit_plan_writes_loadable_json(self, capsys, tmp_path):
        from repro.chaos import FaultPlan, generate_plan

        path = tmp_path / "plan.json"
        code = main(["chaos", "--seed", "3", "--regions", "2",
                     "--shards-per-region", "1", "--emit-plan", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote plan" in out
        plan = FaultPlan.from_json(path.read_text())
        expected = generate_plan(3, num_regions=2, shards_per_region=1)
        assert plan.to_json() == expected.to_json()

    def test_single_seed_scenario_passes(self, capsys, tmp_path):
        out_path = tmp_path / "report.txt"
        code = main(["chaos", "--seed", "3", "--out", str(out_path), *CHAOS_TRIAL])
        out = capsys.readouterr().out
        assert code == 0
        assert "seed=3" in out and " OK" in out
        assert out_path.read_text().endswith("verdict: OK\n")

    def test_plan_file_scenario(self, capsys, tmp_path):
        from repro.chaos import FaultPlan

        path = tmp_path / "plan.json"
        plan = (FaultPlan(name="cli")
                .add(500.0, "set_jitter", jitter=5.0)
                .add(900.0, "set_jitter", jitter=0.0))
        path.write_text(plan.to_json())
        code = main(["chaos", "--plan", str(path), *CHAOS_TRIAL])
        out = capsys.readouterr().out
        assert code == 0
        assert "events=2 faults=2" in out

    def test_fuzz_matrix_runs_each_seed(self, capsys):
        code = main(["chaos", "--fuzz", "2", "--seed", "3", *CHAOS_TRIAL])
        out = capsys.readouterr().out
        assert code == 0
        assert "seed=3" in out and "seed=4" in out

    def test_same_seed_byte_identical_output(self, capsys, tmp_path):
        """Acceptance: ``repro chaos --seed S`` twice emits byte-identical
        fault timelines and audit reports."""
        outputs, files = [], []
        for i in range(2):
            path = tmp_path / f"report{i}.txt"
            code = main(["chaos", "--seed", "5", "--out", str(path), *CHAOS_TRIAL])
            assert code == 0
            out = capsys.readouterr().out
            outputs.append(out.replace(str(path), "<out>"))
            files.append(path.read_text())
        assert outputs[0] == outputs[1]
        assert files[0] == files[1]

    def test_failing_plan_shrinks_and_reports(self, capsys, tmp_path):
        from repro.chaos import FaultPlan

        plan_path = tmp_path / "broken.json"
        shrunk_path = tmp_path / "shrunk.json"
        broken = (FaultPlan(name="broken")
                  .add(500.0, "set_jitter", jitter=10.0)
                  .add(700.0, "partition_regions", r1="r0", r2="r1")
                  .add(1200.0, "set_jitter", jitter=0.0))
        plan_path.write_text(broken.to_json())
        code = main(["chaos", "--plan", str(plan_path), "--seed", "5",
                     "--shrink-budget", "16", "--shrunk-out", str(shrunk_path),
                     *CHAOS_TRIAL])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "shrunk to" in out
        shrunk = FaultPlan.from_json(shrunk_path.read_text())
        assert {e.kind for e in shrunk.events} <= {e.kind for e in broken.events}
        assert "partition_regions" in {e.kind for e in shrunk.events}
