"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "dast" and args.workload == "tpcc"

    def test_experiment_names_parsed(self):
        args = build_parser().parse_args(["experiment", "fig2", "table3"])
        assert args.names == ["fig2", "table3"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig5", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig10a", "fig10b", "ablations",
        }
        assert set(EXPERIMENTS) == expected


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--system", "dast", "--workload", "tpca",
                     "--regions", "2", "--shards-per-region", "1",
                     "--clients", "2", "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput_tps" in out and "dast" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["experiment", "fig999"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_audit_reports_ok(self, capsys):
        code = main(["audit", "--workload", "tpca", "--regions", "2",
                     "--shards-per-region", "1", "--clients", "2",
                     "--duration-ms", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AuditReport(ok)" in out
