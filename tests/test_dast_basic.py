"""End-to-end behaviour of single DAST transactions."""

import pytest

from repro.txn.model import ConditionalAbort, Piece, Transaction
from tests.conftest import (
    kv_apply_input,
    kv_read_forward,
    kv_set,
    make_dast,
    submit_and_run,
)


class TestIrt:
    def test_single_shard_irt_commits_fast(self, dast2):
        txn = Transaction("w", [kv_set(0, 1, 42)])
        result = submit_and_run(dast2, txn)
        assert result.committed and not result.is_crt
        # An IRT should finish within a few intra-region RTTs, far below
        # the 100ms cross-region RTT (R1).
        assert result.finish_time == 0.0  # stamped by clients, not here
        for host in dast2.catalog.replicas_of("s0"):
            assert dast2.nodes[host].shard.get("kv", ("s0-1",))["v"] == 42

    def test_irt_latency_well_below_cross_rtt(self, dast2):
        sim = dast2.sim
        t0 = sim.now
        txn = Transaction("w", [kv_set(0, 1, 7)])
        submit_and_run(dast2, txn)
        # submit_and_run advances in 100ms chunks; measure via records.
        rec = dast2.nodes["r0.n0"].records[txn.txn_id]
        assert rec.t_executed - t0 < 50.0

    def test_multi_shard_irt(self):
        system = make_dast(regions=1, spr=2)
        system.start()
        txn = Transaction("w", [kv_set(0, 1, 5), kv_set(1, 2, 6, piece_index=1)])
        result = submit_and_run(system, txn)
        assert result.committed and not result.is_crt
        assert system.nodes["r0.n0"].shard.get("kv", ("s0-1",))["v"] == 5
        assert system.nodes["r0.n3"].shard.get("kv", ("s1-2",))["v"] == 6

    def test_intra_region_value_dependency(self):
        system = make_dast(regions=1, spr=2)
        system.start()
        submit_and_run(system, Transaction("seed", [kv_set(0, 0, 33)]))
        txn = Transaction("dep", [
            kv_read_forward(0, 0, "x", piece_index=0),
            kv_apply_input(1, 0, "x", piece_index=1),
        ])
        result = submit_and_run(system, txn)
        assert result.committed
        assert result.outputs["x"] == 33
        assert system.nodes["r0.n3"].shard.get("kv", ("s1-0",))["v"] == 33

    def test_outputs_returned_to_client(self, dast2):
        txn = Transaction("w", [kv_set(0, 3, 9, produces=("written",))])
        result = submit_and_run(dast2, txn)
        assert result.outputs == {"written": 9}


class TestCrt:
    def test_cross_region_txn_commits_on_both_shards(self, dast2):
        txn = Transaction("w", [kv_set(0, 1, 10), kv_set(1, 1, 20, piece_index=1)])
        result = submit_and_run(dast2, txn)
        assert result.committed and result.is_crt
        assert dast2.nodes["r0.n0"].shard.get("kv", ("s0-1",))["v"] == 10
        assert dast2.nodes["r1.n0"].shard.get("kv", ("s1-1",))["v"] == 20

    def test_crt_with_cross_region_value_dependency(self, dast2):
        submit_and_run(dast2, Transaction("seed", [kv_set(0, 0, 77)]))
        txn = Transaction("dep", [
            kv_read_forward(0, 0, "x", piece_index=0),
            kv_apply_input(1, 0, "x", piece_index=1),
        ])
        result = submit_and_run(dast2, txn)
        assert result.committed
        assert dast2.nodes["r1.n1"].shard.get("kv", ("s1-0",))["v"] == 77

    def test_crt_phases_recorded(self, dast2):
        txn = Transaction("w", [kv_set(0, 1, 1), kv_set(1, 1, 2, piece_index=1)])
        result = submit_and_run(dast2, txn)
        assert result.phases["remote_prepare"] > 50.0  # at least 1 cross RTT
        assert "wait_exec" in result.phases
        assert result.phases["local_prepare"] >= 0.0

    def test_crt_never_conflict_aborts(self, dast2):
        """R2: concurrent conflicting CRTs all commit."""
        results = []
        for i in range(6):
            txn = Transaction("w", [
                kv_set(0, 0, 100 + i),
                kv_set(1, 0, 200 + i, piece_index=1),
            ])
            ev = dast2.submit("r0.c0", "r0.n0", txn, timeout=60000.0)
            ev.add_callback(lambda e: results.append(e.value))
        dast2.run(until=dast2.sim.now + 5000.0)
        assert len(results) == 6
        assert all(r.committed for r in results)

    def test_conditional_abort_consistent_across_shards(self, dast2):
        def aborting_body(ctx):
            ctx.store.update("kv", ("s0-5",), {"v": 1})
            raise ConditionalAbort("guard failed")

        def remote_guard(ctx):
            # Same deterministic predicate evaluated remotely.
            raise ConditionalAbort("guard failed")

        txn = Transaction("cond", [
            Piece(0, "s0", aborting_body, lock_keys=(("kv", "s0-5"),)),
            Piece(1, "s1", remote_guard, lock_keys=(("kv", "s1-5"),)),
        ])
        result = submit_and_run(dast2, txn)
        assert not result.committed
        assert result.abort_reason == "guard failed"
        assert dast2.nodes["r0.n0"].shard.get("kv", ("s0-5",))["v"] == 0
        assert dast2.nodes["r1.n0"].shard.get("kv", ("s1-5",))["v"] == 0


class TestReplication:
    def test_replicas_converge(self, dast2):
        for i in range(5):
            submit_and_run(dast2, Transaction("w", [kv_set(0, i, i * 11)]))
        digests = dast2.replicas_digest("s0")
        assert len(set(digests)) == 1

    def test_execution_order_identical_across_replicas(self, dast2):
        for i in range(5):
            submit_and_run(dast2, Transaction("w", [kv_set(0, 0, i)]))
        logs = [
            [txn_id for _ts, txn_id in dast2.nodes[h].executed_log]
            for h in dast2.catalog.replicas_of("s0")
        ]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 5

    def test_timestamps_strictly_increase_in_execution_order(self, dast2):
        for i in range(5):
            submit_and_run(dast2, Transaction("w", [kv_set(0, 0, i)]))
        log = dast2.nodes["r0.n0"].executed_log
        stamps = [ts for ts, _ in log]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)


class TestSessionOrder:
    def test_proposition2_sequential_txns_ordered(self, dast2):
        """A txn started after another finishes is ordered after it."""
        first = Transaction("w", [kv_set(0, 0, 1)])
        submit_and_run(dast2, first)
        second = Transaction("w", [kv_set(0, 0, 2)])
        submit_and_run(dast2, second)
        log = dast2.nodes["r0.n0"].executed_log
        ids = [txn_id for _ts, txn_id in log]
        assert ids.index(first.txn_id) < ids.index(second.txn_id)
        # Final state reflects the later transaction (no stale read/write).
        assert dast2.nodes["r0.n0"].shard.get("kv", ("s0-0",))["v"] == 2
