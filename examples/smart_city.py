#!/usr/bin/env python3
"""A smart-city scenario written directly against the DAST public API.

The paper motivates DAST with mission-critical edge applications: smart
city traffic management coordinating vehicles and road infrastructure
(§2).  This example models a city where each district (edge region) owns a
shard of intersections and vehicles:

* ``reserve_lane``    — IRT: a vehicle reserves a lane slot at a local
  intersection (latency-critical: must finish in tens of ms);
* ``cross_district`` — CRT: a route handoff debits a vehicle's toll
  balance in its home district and reserves an arrival slot in another
  district, carrying a value dependency (the granted slot id flows back).

It shows how to define stored-procedure transactions with Pieces, value
dependencies, conditional aborts, and a priori lock footprints.

Run:  python examples/smart_city.py
"""

import random

from repro.bench.metrics import LatencyRecorder
from repro.config import Topology, TopologyConfig
from repro.core.system import DastSystem
from repro.storage.shard import Shard
from repro.storage.table import TableSchema
from repro.txn.model import Piece, Transaction
from repro.workloads.base import ClientBinding, Workload
from repro.workloads.client import spawn_clients

INTERSECTIONS = 20
VEHICLES = 50


class SmartCityWorkload(Workload):
    name = "smart-city"

    def __init__(self, topology, seed=1, handoff_ratio=0.08):
        super().__init__(topology, seed)
        self.handoff_ratio = handoff_ratio

    def schemas(self):
        return [
            TableSchema("intersection", ["district", "i_id", "free_slots"],
                        ["district", "i_id"]),
            TableSchema("vehicle", ["district", "v_id", "toll_balance"],
                        ["district", "v_id"]),
            TableSchema("reservation", ["r_id", "district", "i_id", "v_id"],
                        ["r_id"]),
        ]

    def load(self, shard: Shard, district: int) -> None:
        for i in range(INTERSECTIONS):
            shard.insert("intersection",
                         {"district": district, "i_id": i, "free_slots": 1000})
        for v in range(VEHICLES):
            shard.insert("vehicle",
                         {"district": district, "v_id": v, "toll_balance": 500.0})

    # -- transactions -----------------------------------------------------
    def reserve_lane(self, district: int, i_id: int, v_id: int, r_id: str):
        """IRT: grab a slot at a local intersection (aborts if full)."""

        def body(ctx):
            row = ctx.store.get("intersection", (district, i_id))
            if row["free_slots"] <= 0:
                ctx.abort("intersection full")
            ctx.store.update("intersection", (district, i_id),
                             {"free_slots": row["free_slots"] - 1})
            ctx.store.insert("reservation", {
                "r_id": r_id, "district": district, "i_id": i_id, "v_id": v_id,
            })
            ctx.put("granted_slot", row["free_slots"] - 1)

        piece = Piece(0, self.topology.shard_name(district), body,
                      produces=("granted_slot",),
                      lock_keys=(("intersection", district, i_id),))
        return Transaction("reserve_lane", [piece])

    def cross_district_handoff(self, home: int, dst: int, v_id: int,
                               i_id: int, toll: float, r_id: str):
        """CRT with a value dependency: reserve remotely, then debit the
        toll at home using the granted slot id."""

        def reserve_remote(ctx):
            row = ctx.store.get("intersection", (dst, i_id))
            if row["free_slots"] <= 0:
                ctx.abort("destination intersection full")
            ctx.store.update("intersection", (dst, i_id),
                             {"free_slots": row["free_slots"] - 1})
            ctx.store.insert("reservation", {
                "r_id": r_id, "district": dst, "i_id": i_id, "v_id": v_id,
            })
            ctx.put("slot", row["free_slots"] - 1)

        def debit_home(ctx):
            vehicle = ctx.store.get("vehicle", (home, v_id))
            # The slot id from the destination district rides the push
            # mechanism; serializability makes the read consistent.
            _slot = ctx.inputs["slot"]
            ctx.store.update("vehicle", (home, v_id),
                             {"toll_balance": vehicle["toll_balance"] - toll})

        pieces = [
            Piece(0, self.topology.shard_name(dst), reserve_remote,
                  produces=("slot",),
                  lock_keys=(("intersection", dst, i_id),)),
            Piece(1, self.topology.shard_name(home), debit_home,
                  needs=("slot",),
                  lock_keys=(("vehicle", home, v_id),)),
        ]
        return Transaction("cross_district_handoff", pieces)

    # -- generator ----------------------------------------------------------
    def next_transaction(self, binding: ClientBinding, rng: random.Random):
        district = binding.home_shard_index
        r_id = f"r{rng.getrandbits(48):012x}"
        if rng.random() < self.handoff_ratio:
            dst = self.remote_shard_index(binding, rng)
            if dst is not None:
                return self.cross_district_handoff(
                    district, dst, rng.randrange(VEHICLES),
                    rng.randrange(INTERSECTIONS), toll=2.5, r_id=r_id,
                )
        return self.reserve_lane(
            district, rng.randrange(INTERSECTIONS), rng.randrange(VEHICLES), r_id,
        )


def main() -> None:
    topology = Topology(TopologyConfig(
        num_regions=3, shards_per_region=1, replication=3, clients_per_region=6,
    ))
    workload = SmartCityWorkload(topology)
    system = DastSystem(topology, workload.schemas(), workload.load)
    recorder = LatencyRecorder(warm_start=1000.0)
    system.start()
    clients = spawn_clients(system, workload, recorder.record)
    system.run(until=8000.0)
    for client in clients:
        client.stop()
    system.run(until=11000.0)

    summary = recorder.summarize("smart-city on dast")
    print(summary)
    print(f"lane reservations (IRT) p99: {summary.irt_p99:.1f} ms "
          f"— the tens-of-ms budget the paper's IoT scenarios demand")
    print(f"district handoffs (CRT) p99: {summary.crt_p99:.1f} ms")
    full = sum(1 for r in recorder.results if r.abort_reason.endswith("full"))
    print(f"conditional aborts (full intersections): {full}")
    for shard_id in topology.all_shards():
        assert len(set(system.replicas_digest(shard_id))) == 1, "replicas diverged!"
    print("all replicas consistent ✓")


if __name__ == "__main__":
    main()
