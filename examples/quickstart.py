#!/usr/bin/env python3
"""Quickstart: run DAST on TPC-C and print the headline numbers.

Builds a small edge deployment (2 regions x 2 warehouse-shards x 3
replicas), drives closed-loop clients for a few virtual seconds, and prints
the paper's headline metrics: tail latency split by intra-region (IRT) and
cross-region (CRT) transactions.

Run:  python examples/quickstart.py
"""

from repro.bench.harness import Trial, run_trial
from repro.bench.report import format_table
from repro.workloads.tpcc import TpccWorkload


def main() -> None:
    print("Running DAST on TPC-C (2 regions, 4 warehouses, 3x replication)...")
    trial = Trial(
        "dast",
        lambda topology: TpccWorkload(topology),
        num_regions=2,
        shards_per_region=2,
        clients_per_region=8,
        duration_ms=6000.0,  # virtual milliseconds
    )
    result = run_trial(trial)
    summary = result.summary
    print()
    print(format_table([summary.as_row()]))
    print()
    print("CRT latency phase breakdown (cf. paper Table 3):")
    for label, dep in (("without value deps", False), ("with value deps", True)):
        breakdown = result.recorder.phase_breakdown(with_dependency=dep)
        if breakdown:
            phases = {k: round(v, 1) for k, v in breakdown.items() if k != "count"}
            print(f"  {label}: {phases}")
    print()
    print(f"Clock stretches performed: {result.system.total_stretches()}")
    print("The headline property (R1): IRT p99 stays a few intra-region RTTs")
    print(f"  -> measured IRT p99 = {summary.irt_p99:.1f} ms "
          f"(cross-region RTT is {trial.timing.cross_region_rtt:.0f} ms)")


if __name__ == "__main__":
    main()
