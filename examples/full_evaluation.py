#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§6).

Runs all experiments from ``repro.bench.experiments`` at a configurable
scale and writes paper-style tables to stdout.  The default scale finishes
in a few minutes; ``--scale large`` gets closer to paper proportions (more
regions/clients, longer virtual runs) and takes correspondingly longer.

Trials run through the ``repro.fleet`` orchestrator: ``--jobs N`` fans them
out over N worker processes, and unchanged configurations are served from
the content-addressed result cache (disable with ``--no-cache``, force
recomputation with ``--refresh``).

Run:  python examples/full_evaluation.py [--scale small|large] [--jobs N]
          [--only fig2,...]
"""

import argparse
import sys
import time

from repro.bench import experiments as exp
from repro.bench.report import format_series, format_table
from repro.fleet import DEFAULT_CACHE_DIR, FleetExecutor, ResultCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "large"], default="small")
    parser.add_argument("--only", default="",
                        help="comma-separated subset, e.g. fig2,table3")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for trial fan-out (1 = in-process)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="content-addressed result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="ignore cached results but store fresh ones")
    args = parser.parse_args()
    big = args.scale == "large"
    only = {s.strip() for s in args.only.split(",") if s.strip()}

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    fleet = FleetExecutor(
        jobs=args.jobs, cache=cache, refresh=args.refresh,
        progress=lambda line: print(line, file=sys.stderr),
    )
    start = time.perf_counter()

    def wanted(name: str) -> bool:
        return not only or name in only

    if wanted("table1"):
        from repro.bench.features import feature_rows
        print("=== Table 1: qualitative comparison ===")
        print(format_table(feature_rows(),
                           ["system", "implemented", "serializable", "r1", "r2", "r3"]))
        print()

    if wanted("fig2"):
        print("=== Figure 2: p99 tail latency, TPC-C ===")
        rows = exp.fig2_tail_latency(
            num_regions=4 if big else 3, clients_per_region=16 if big else 8,
            duration_ms=12000.0 if big else 6000.0, fleet=fleet,
        )
        print(format_table(rows, ["system", "irt_p99_ms", "crt_p99_ms",
                                  "throughput_tps"]))
        print()

    if wanted("table2"):
        print("=== Table 2: TPC-C transaction mix ===")
        mix = exp.table2_transaction_mix(samples=50000 if big else 10000)
        rows = [{"txn_type": t, **{k: round(v, 4) for k, v in v.items()}}
                for t, v in mix.items()]
        print(format_table(rows, ["txn_type", "irt_ratio", "crt_ratio", "total_ratio"]))
        print()

    if wanted("fig5"):
        print("=== Figure 5: client sweep, TPC-C ===")
        series = exp.fig5_client_sweep(
            client_counts=(4, 8, 16, 32) if big else (2, 8, 16),
            duration_ms=8000.0 if big else 5000.0, fleet=fleet,
        )
        print(format_series(series, ["clients_per_region", "throughput_tps",
                                     "irt_p50_ms", "crt_p50_ms"]))
        print()

    if wanted("table3"):
        print("=== Table 3: DAST CRT breakdown, TPC-C ===")
        breakdown = exp.table3_crt_breakdown(
            num_regions=4 if big else 3, duration_ms=10000.0 if big else 7000.0,
            fleet=fleet,
        )
        rows = [{"case": k, **{kk: round(vv, 1) for kk, vv in v.items()}}
                for k, v in breakdown.items() if v]
        print(format_table(rows))
        print()

    if wanted("fig6"):
        print("=== Figure 6: payment-only CRT-ratio sweep ===")
        series = exp.fig6_crt_ratio_sweep(
            ratios=(0.01, 0.1, 0.4, 0.8) if big else (0.01, 0.2, 0.6),
            duration_ms=8000.0 if big else 5000.0, fleet=fleet,
        )
        print(format_series(series, ["crt_ratio", "throughput_tps",
                                     "irt_p99_ms", "crt_p99_ms", "abort_rate"]))
        print()

    if wanted("table4"):
        print("=== Table 4: payment-only (40% CRT) breakdown ===")
        breakdown = exp.table4_payment_breakdown(
            duration_ms=10000.0 if big else 7000.0, fleet=fleet,
        )
        rows = [{"case": k, **{kk: round(vv, 1) for kk, vv in v.items()}}
                for k, v in breakdown.items() if v]
        print(format_table(rows))
        print()

    if wanted("fig7"):
        print("=== Figure 7: TPC-A conflict sweep ===")
        series = exp.fig7_conflict_sweep(
            thetas=(0.5, 0.7, 0.9, 0.99) if big else (0.5, 0.9),
            duration_ms=8000.0 if big else 5000.0, fleet=fleet,
        )
        print(format_series(series, ["theta", "throughput_tps", "irt_p99_ms",
                                     "crt_p99_ms", "abort_rate"]))
        print()

    if wanted("fig8"):
        print("=== Figure 8: region scalability ===")
        series = exp.fig8_region_scalability(
            region_counts=(2, 4, 8, 12) if big else (2, 4, 8),
            duration_ms=6000.0 if big else 4000.0, fleet=fleet,
        )
        print(format_series(series, ["regions", "throughput_tps",
                                     "crt_p50_ms", "crt_p99_ms"]))
        print()

    if wanted("fig9"):
        print("=== Figure 9a: RTT jitter ===")
        rows = exp.fig9a_rtt_jitter(
            jitters=(0.0, 10.0, 30.0, 50.0) if big else (0.0, 30.0), fleet=fleet)
        print(format_table(rows, ["jitter_ms", "irt_p99_ms", "crt_p99_ms"]))
        print()
        print("=== Figure 9b: abrupt RTT steps (timeline) ===")
        series = exp.fig9b_rtt_steps(phase_ms=4000.0 if big else 2500.0, fleet=fleet)
        print(format_table(series, ["t_ms", "throughput_tps", "irt_p50_ms",
                                    "crt_p50_ms"]))
        from repro.bench.plots import sparkline
        print("IRT p50 over time:", sparkline([r["irt_p50_ms"] for r in series]))
        print("CRT p50 over time:", sparkline([r["crt_p50_ms"] for r in series]))
        print()

    if wanted("fig10"):
        print("=== Figure 10a: 200ms clock-skew injection (timeline) ===")
        series = exp.fig10a_clock_skew_timeline(
            duration_ms=14000.0 if big else 9000.0, fleet=fleet,
        )
        print(format_table(series, ["t_ms", "irt_p99_ms", "crt_p50_ms",
                                    "crt_p99_ms"]))
        from repro.bench.plots import sparkline
        print("CRT p99 over time (skew injected mid-run):",
              sparkline([r["crt_p99_ms"] for r in series]))
        print()
        print("=== Figure 10b: skew + asymmetric delay ===")
        rows = exp.fig10b_asymmetric_delay(
            forward_fractions=(0.5, 0.6, 0.7) if big else (0.5, 0.65), fleet=fleet,
        )
        print(format_table(rows, ["forward_fraction", "irt_p99_ms", "crt_p50_ms"]))
        print()

    if wanted("ablations"):
        print("=== Ablations: DAST design choices ===")
        rows = exp.ablation_sweep(duration_ms=8000.0 if big else 5000.0, fleet=fleet)
        print(format_table(rows, ["variant", "throughput_tps", "irt_p99_ms",
                                  "crt_p99_ms", "stretches"]))

    summary = f"done in {time.perf_counter() - start:.1f}s (jobs={args.jobs})"
    if cache is not None:
        summary += f"; {cache.describe()}"
    print(summary, file=sys.stderr)


if __name__ == "__main__":
    main()
