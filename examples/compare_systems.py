#!/usr/bin/env python3
"""Compare all four systems (DAST, Janus, Tapir, SLOG) on the same workload.

Reproduces the Figure 2 experiment at example scale: identical topology,
identical seeded workload, four protocols.  Prints the tail-latency table
and each system's distinguishing behaviour.

Run:  python examples/compare_systems.py [--workload tpcc|tpca|payment]
"""

import argparse

from repro.bench.harness import SYSTEMS, Trial, run_trial
from repro.bench.report import format_table
from repro.workloads.tpca import TpcaWorkload
from repro.workloads.tpcc import PaymentOnlyWorkload, TpccWorkload

WORKLOADS = {
    "tpcc": lambda topo: TpccWorkload(topo),
    "tpca": lambda topo: TpcaWorkload(topo, theta=0.9, crt_ratio=0.2),
    "payment": lambda topo: PaymentOnlyWorkload(topo, crt_ratio=0.3),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=sorted(WORKLOADS), default="tpcc")
    parser.add_argument("--regions", type=int, default=2)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration-ms", type=float, default=6000.0)
    args = parser.parse_args()

    rows = []
    for system in SYSTEMS:
        print(f"running {system} on {args.workload}...")
        result = run_trial(Trial(
            system, WORKLOADS[args.workload],
            num_regions=args.regions, shards_per_region=2,
            clients_per_region=args.clients, duration_ms=args.duration_ms,
        ))
        rows.append(result.summary.as_row())
    print()
    print(format_table(rows, ["system", "throughput_tps", "irt_p50_ms",
                              "irt_p99_ms", "crt_p50_ms", "crt_p99_ms",
                              "abort_rate"]))
    print()
    print("What to look for (the paper's Figure 2):")
    print(" * dast  — IRT p99 stays a few intra-region RTTs (R1); zero conflict aborts (R2)")
    print(" * janus — IRTs conflicting with CRTs wait out the WAN coordination (FCFS)")
    print(" * tapir — low median, but aborted+retried transactions stretch the tail")
    print(" * slog  — IRTs block behind CRTs holding locks across cross-region reads")


if __name__ == "__main__":
    main()
