#!/usr/bin/env python3
"""Fault-tolerance walkthrough: DAST's failover protocols (§4.4) live.

Script:
 1. run TPC-C traffic on a 2-region deployment;
 2. crash a shard replica -> the manager installs a new view (Algorithm 3),
    orphaned IRTs commit, orphaned CRTs abort, traffic continues;
 3. crash the active manager -> the standby takes over (SMR-backed view);
 4. add a fresh replica back via checkpoint transfer + the fake-CRT clock
    alignment (Algorithm 4);
 5. verify every surviving replica converged to identical state.

Run:  python examples/failover_demo.py
"""

from repro.bench.metrics import LatencyRecorder
from repro.config import Topology, TopologyConfig
from repro.core.system import DastSystem
from repro.workloads.client import spawn_clients
from repro.workloads.tpcc import TpccWorkload


def consistent(system, shard_id: str) -> bool:
    return len(set(system.replicas_digest(shard_id))) == 1


def main() -> None:
    topology = Topology(TopologyConfig(
        num_regions=2, shards_per_region=1, replication=3, clients_per_region=4,
    ))
    workload = TpccWorkload(topology)
    system = DastSystem(topology, workload.schemas(), workload.load, with_smr=True)
    recorder = LatencyRecorder()
    system.start()
    clients = spawn_clients(system, workload, recorder.record)

    print("phase 1: normal traffic for 2s (virtual)...")
    system.run(until=2000.0)
    print(f"  completed: {len(recorder.results)} txns")

    print("phase 2: crashing data node r0.n1 (Algorithm 3 fast failover)...")
    system.crash_node("r0.n1")
    system.run(until=4000.0)
    survivor = system.nodes["r0.n0"]
    print(f"  new view id: {survivor.vid}; members: {survivor.members}")
    print(f"  completed so far: {len(recorder.results)} txns (traffic continued)")

    print("phase 3: crashing region r1's manager (standby takeover)...")
    new_mgr = system.fail_manager("r1")
    system.run(until=6000.0)
    print(f"  active manager for r1 is now {new_mgr.host} (vid {new_mgr.vid})")
    print(f"  completed so far: {len(recorder.results)} txns")

    print("phase 4: adding a fresh replica r0.n9 (Algorithm 4)...")
    event = system.add_replica("r0", "r0.n9", "s0")
    system.run(until=8000.0)
    if event.triggered and event.ok:
        print(f"  installed at anticipated ts {event.value['ts_ins']}")
    system.run(until=9000.0)

    print("phase 5: drain and verify consistency...")
    for client in clients:
        client.stop()
    system.run(until=13000.0)
    for shard_id in topology.all_shards():
        status = "consistent" if consistent(system, shard_id) else "DIVERGED"
        replicas = [h for h in system.catalog.replicas_of(shard_id) if h in system.nodes]
        print(f"  {shard_id}: {status} across {replicas}")
    aborted = sum(1 for r in recorder.results if not r.committed)
    print(f"done: {len(recorder.results)} transactions, {aborted} aborted "
          f"(failover aborts + TPC-C rollbacks)")


if __name__ == "__main__":
    main()
