"""Ablations of DAST's design choices (DESIGN.md's ablation index).

* no-stretch — the dclock ignores its floor; IRTs take physical timestamps
  and land *after* pending CRTs, so they block for up to a cross-region
  RTT: the FCFS behaviour of Figure 1a.
* no-anticipation — CRTs are bound to the manager's current time (the
  §3.2 strawman): the floor sits at "now" for the whole coordination
  window, forcing clocks to stretch constantly.
* no-calibration — clocks never chase each other; under skew this inflates
  CRT latency (exercised further by Fig 10 benches).
"""

import pytest

from repro.bench.experiments import ablation_sweep
from repro.bench.report import format_table

from _helpers import write_result

_cache = {}


def _rows():
    if "rows" not in _cache:
        _cache["rows"] = ablation_sweep(
            num_regions=2, shards_per_region=2, clients_per_region=8,
            duration_ms=6000.0, seed=1,
        )
    return _cache["rows"]


def test_ablations_run(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table(rows, ["variant", "throughput_tps", "irt_p50_ms",
                               "irt_p99_ms", "crt_p50_ms", "crt_p99_ms",
                               "stretches"])
    print(text)
    write_result("ablations", text)
    assert {r["variant"] for r in rows} == {
        "full", "no-stretch", "no-anticipation", "no-calibration",
    }


def test_ablation_stretch_is_what_protects_irts(benchmark):
    """Without the stretchable clock, IRT tails blow up toward the
    cross-region RTT — the paper's core claim, inverted."""
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    by = {r["variant"]: r for r in rows}
    assert by["full"]["irt_p99_ms"] < 40.0
    assert by["no-stretch"]["irt_p99_ms"] > 2.5 * by["full"]["irt_p99_ms"]


def test_ablation_anticipation_reduces_stretching(benchmark):
    """Anticipating into the future keeps the floor ahead of the clocks, so
    the full system stretches far less than the strawman."""
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    by = {r["variant"]: r for r in rows}
    assert by["no-anticipation"]["stretches"] > 2 * max(1, by["full"]["stretches"])
    # IRTs stay protected either way (the stretch mechanism covers for the
    # missing anticipation), at the cost of constant clock freezing.
    assert by["no-anticipation"]["irt_p99_ms"] < 60.0


def test_ablation_all_variants_still_commit(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    for row in rows:
        assert row["throughput_tps"] > 0, row["variant"]
