"""Shared utilities for the benchmark suite.

Each benchmark regenerates one paper artifact (table/figure) at simulation
scale, asserts the paper's qualitative *shape* (who wins, rough factors,
where crossovers fall), and writes the paper-style rows to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def by_system(rows_by_system: Dict[str, List[dict]], system: str, key: str) -> List:
    return [row[key] for row in rows_by_system[system]]
