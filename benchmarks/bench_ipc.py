#!/usr/bin/env python
"""Microbenchmark: what one cross-partition window costs the process backend.

The process backend ships :class:`~repro.sim.par.channel.CrossChannel`
frames between forked workers in window-sized batches — each window is
one encode (:mod:`repro.sim.par.codec`), one length-prefixed pipe write,
one read, one decode.  This bench isolates those costs with real frames
(TPC-C transactions whose piece bodies are closures, the expensive case)
so docs/PARALLEL.md's IPC cost model stays honest::

    python benchmarks/bench_ipc.py [--json out.json]

Reported per window size: encoded bytes, encode/decode µs, and the full
pipe round-trip µs.  The break-even rule of thumb: the process backend
wins when per-window simulation work exceeds roughly the round-trip cost
times the partition count.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import struct
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import Topology, TopologyConfig  # noqa: E402
from repro.sim.par import codec  # noqa: E402

_HDR = struct.Struct("<I")


def build_frames(count: int):
    """Representative cross-partition frames: canonical 8-tuples whose
    payloads are TPC-C transactions (closure-carrying piece bodies)."""
    from repro.workloads.tpcc import TpccWorkload

    topo = Topology(TopologyConfig(num_regions=2, shards_per_region=2,
                                   clients_per_region=2))
    workload = TpccWorkload(topo)
    bindings = workload.bind_clients()
    rng = random.Random(11)
    frames = []
    for i in range(count):
        txn = workload.next_transaction(bindings[i % len(bindings)], rng)
        frames.append((10.0 + i * 0.05, 10.0 + i * 0.05, 0, i,
                       "r0.n0", "r1.n0", txn, 0))
    return frames


def bench_window(frames, repeats: int = 30):
    """Encode / pipe-ship / decode one window of ``frames``, best-of runs.

    The writer runs on a helper thread because a window can exceed the
    kernel pipe buffer — exactly like the real protocol, where the worker
    on the far end is already reading while the parent writes.
    """
    import threading

    encode_s = decode_s = ship_s = float("inf")
    data = codec.dumps(frames)
    r_fd, w_fd = os.pipe()
    rf, wf = os.fdopen(r_fd, "rb"), os.fdopen(w_fd, "wb")

    def write(payload: bytes) -> None:
        wf.write(_HDR.pack(len(payload)))
        wf.write(payload)
        wf.flush()

    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            data = codec.dumps(frames)
            t1 = time.perf_counter()
            codec.loads(data)
            t2 = time.perf_counter()
            writer = threading.Thread(target=write, args=(data,))
            writer.start()
            hdr = rf.read(_HDR.size)
            codec.loads(rf.read(_HDR.unpack(hdr)[0]))
            t3 = time.perf_counter()
            writer.join()
            encode_s = min(encode_s, t1 - t0)
            decode_s = min(decode_s, t2 - t1)
            ship_s = min(ship_s, t3 - t2)
    finally:
        rf.close()
        wf.close()
    return {
        "frames": len(frames),
        "encoded_bytes": len(data),
        "encode_us": round(encode_s * 1e6, 1),
        "decode_us": round(decode_s * 1e6, 1),
        "ship_roundtrip_us": round(ship_s * 1e6, 1),
        "us_per_frame": round((encode_s + ship_s) * 1e6 / len(frames), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="1,16,64,256",
                        help="comma-separated window sizes (frames)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the rows as JSON")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s]
    pool = build_frames(max(sizes))
    rows = [bench_window(pool[:n]) for n in sizes]

    header = ("frames", "encoded_bytes", "encode_us", "decode_us",
              "ship_roundtrip_us", "us_per_frame")
    widths = [max(len(h), *(len(str(r[h])) for r in rows)) for h in header]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(row[h]).ljust(w) for h, w in zip(header, widths)))

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"schema": "repro.bench.ipc/1", "rows": rows}, fh,
                      indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    # Sanity gate for CI: shipping a window must stay in the sub-millisecond
    # band per frame, or batching has silently broken.
    worst = max(r["us_per_frame"] for r in rows if r["frames"] > 1)
    if worst > 1000.0:
        print(f"bench-ipc: FAIL — {worst} us/frame exceeds 1ms", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
