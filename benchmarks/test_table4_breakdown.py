"""Table 4: DAST CRT breakdown for payment-only at a 40% CRT ratio.

Paper: versus Table 3, the dominating increase is the "wait exe." phase
(13-15 ms -> ~240 ms) — frozen clocks during input waits delay subsequent
CRTs; prepare phases stay at ~1 RTT / ~1 intra-RTT.
"""

import pytest

from repro.bench.experiments import table3_crt_breakdown, table4_payment_breakdown
from repro.bench.report import format_table

from _helpers import write_result

_cache = {}


def _both():
    if "both" not in _cache:
        _cache["both"] = {
            "tpcc_default": table3_crt_breakdown(
                num_regions=3, shards_per_region=1, clients_per_region=6,
                duration_ms=7000.0, seed=1,
            ),
            "payment_only_40pct": table4_payment_breakdown(
                crt_ratio=0.4, num_regions=3, shards_per_region=1,
                clients_per_region=6, duration_ms=7000.0, seed=1,
            ),
        }
    return _cache["both"]


def test_table4_rows(benchmark):
    both = benchmark.pedantic(_both, rounds=1, iterations=1)
    rows = []
    for workload, bd in both.items():
        for case, values in bd.items():
            if not values:
                continue
            row = {"workload": workload, "case": case}
            row.update({k: round(v, 1) for k, v in values.items()})
            rows.append(row)
    text = format_table(rows, ["workload", "case", "local_prepare",
                               "remote_prepare", "wait_exec", "wait_input",
                               "wait_output", "total", "count"])
    print(text)
    write_result("table4_breakdown", text)
    assert len(rows) >= 3


def test_table4_wait_exec_grows_with_crt_ratio(benchmark):
    """The paper's headline: the major increment over Table 3 is wait-exe —
    frozen clocks during other CRTs' input waits delay *subsequent* CRTs,
    which is most visible on the dependency-free CRTs queued behind."""
    both = benchmark.pedantic(_both, rounds=1, iterations=1)
    tpcc = both["tpcc_default"]["without_dependency"]
    pay = both["payment_only_40pct"]["without_dependency"]
    assert pay["wait_exec"] > 1.4 * tpcc["wait_exec"]


def test_table4_prepare_phases_unchanged(benchmark):
    both = benchmark.pedantic(_both, rounds=1, iterations=1)
    for bd in both.values():
        for case in bd.values():
            if not case:
                continue
            assert 90.0 < case["remote_prepare"] < 150.0
            assert case["local_prepare"] < 20.0
