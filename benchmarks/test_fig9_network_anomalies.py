"""Figure 9: DAST's robustness to cross-region network anomalies.

9a — uniform RTT jitter ±x: IRT latency stays stable (the hybrid clock
tolerates inaccurate anticipations); CRT latency grows roughly with x but
does not accumulate.

9b — abrupt RTT steps (100 -> 150 -> 100 -> 50 -> 100 ms): IRT latency
stays flat through every step; CRT latency follows the RTT, with a lag
when the RTT drops because the anticipation uses averaged history.
"""

import pytest

from repro.bench.experiments import fig9a_rtt_jitter, fig9b_rtt_steps
from repro.bench.report import format_table

from _helpers import write_result

JITTERS = (0.0, 20.0, 50.0)
_cache = {}


def _jitter_rows():
    if "a" not in _cache:
        _cache["a"] = fig9a_rtt_jitter(
            jitters=JITTERS, num_regions=2, shards_per_region=2,
            clients_per_region=8, duration_ms=6000.0, seed=1,
        )
    return _cache["a"]


def _step_series():
    if "b" not in _cache:
        _cache["b"] = fig9b_rtt_steps(
            num_regions=2, shards_per_region=2, clients_per_region=8,
            phase_ms=3000.0, seed=1,
        )
    return _cache["b"]


def test_fig9a_run(benchmark):
    rows = benchmark.pedantic(_jitter_rows, rounds=1, iterations=1)
    text = format_table(rows, ["jitter_ms", "throughput_tps", "irt_p50_ms",
                               "irt_p99_ms", "crt_p50_ms", "crt_p99_ms"])
    print(text)
    write_result("fig9a_rtt_jitter", text)
    assert len(rows) == len(JITTERS)


def test_fig9a_irt_stable_under_jitter(benchmark):
    rows = benchmark.pedantic(_jitter_rows, rounds=1, iterations=1)
    tails = [r["irt_p99_ms"] for r in rows]
    assert max(tails) < 2.0 * min(tails)
    assert max(tails) < 40.0


def test_fig9a_crt_grows_roughly_with_jitter(benchmark):
    rows = benchmark.pedantic(_jitter_rows, rounds=1, iterations=1)
    crt = [r["crt_p50_ms"] for r in rows]
    # Median grows with the jitter but the disturbance does not accumulate
    # (the p99 at this scale is dominated by queueing noise, so the median
    # is the stable signal the paper's Fig 9a reports).
    assert crt[-1] >= crt[0] - 5.0
    assert crt[-1] < crt[0] + 4 * JITTERS[-1]


def test_fig9b_run(benchmark):
    series = benchmark.pedantic(_step_series, rounds=1, iterations=1)
    text = format_table(series, ["t_ms", "throughput_tps", "irt_p50_ms",
                                 "irt_p99_ms", "crt_p50_ms", "crt_p99_ms"])
    print(text)
    write_result("fig9b_rtt_steps", text)
    assert len(series) > 10


def test_fig9b_irt_flat_through_rtt_steps(benchmark):
    series = benchmark.pedantic(_step_series, rounds=1, iterations=1)
    irts = [row["irt_p50_ms"] for row in series if row["irt_p50_ms"] > 0]
    assert max(irts) < 2.0 * min(irts)


def test_fig9b_crt_follows_the_rtt(benchmark):
    """CRT latency is higher during the 150 ms phase than the 50 ms phase."""
    series = benchmark.pedantic(_step_series, rounds=1, iterations=1)

    def phase_median(lo, hi):
        values = [row["crt_p50_ms"] for row in series
                  if lo <= row["t_ms"] < hi and row["crt_p50_ms"] > 0]
        values.sort()
        return values[len(values) // 2] if values else 0.0

    high_rtt = phase_median(4000.0, 6000.0)   # late in the 150ms phase
    low_rtt = phase_median(10000.0, 12000.0)  # late in the 50ms phase
    assert high_rtt > low_rtt
