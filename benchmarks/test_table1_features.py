"""Table 1: the qualitative R1/R2/R3 matrix, cross-checked against measured
behaviour of the four implemented systems."""

import pytest

from repro.bench.experiments import fig7_conflict_sweep
from repro.bench.features import FEATURE_MATRIX, IMPLEMENTED, feature_rows
from repro.bench.report import format_table

from _helpers import write_result

_cache = {}


def _sweep():
    """One contended TPC-A point: enough to verify the R1/R2 flags."""
    if "sweep" not in _cache:
        _cache["sweep"] = fig7_conflict_sweep(
            thetas=(0.95,), num_regions=2, shards_per_region=1,
            clients_per_region=8, duration_ms=5000.0, seed=1,
        )
    return _cache["sweep"]


def test_table1_matrix(benchmark):
    rows = benchmark.pedantic(feature_rows, rounds=1, iterations=1)
    text = format_table(rows, ["system", "implemented", "serializable", "r1", "r2", "r3"])
    print(text)
    write_result("table1_features", text)
    assert {r["system"] for r in rows} >= set(IMPLEMENTED)
    assert all(FEATURE_MATRIX["dast"].values())


def test_table1_r2_flag_matches_measured_aborts(benchmark):
    """R2 claim check: systems flagged r2=True never conflict-abort; the
    one flagged r2=False (Tapir) does abort/retry under contention."""
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for system in ("dast", "janus", "slog"):
        assert FEATURE_MATRIX[system]["r2"]
        assert sweep[system][0]["abort_rate"] == 0.0, system
    assert not FEATURE_MATRIX["tapir"]["r2"]


def test_table1_r1_flag_matches_measured_irt_tail(benchmark):
    """R1 claim check on the contended point: flagged systems keep the IRT
    tail intra-region-ish; unflagged SMR systems do not."""
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    dast_tail = sweep["dast"][0]["irt_p99_ms"]
    janus_tail = sweep["janus"][0]["irt_p99_ms"]
    assert FEATURE_MATRIX["dast"]["r1"] and dast_tail < 40.0
    assert not FEATURE_MATRIX["janus"]["r1"] and janus_tail > dast_tail
