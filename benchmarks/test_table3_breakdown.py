"""Table 3: DAST CRT latency phase breakdown on default TPC-C.

Paper (100 ms cross-region RTT): remote prepare ~107 ms, local prepare
~7 ms; transactions without value dependencies spend ~1 RTT waiting for
outputs to travel back, while transactions with dependencies spend ~1 RTT
waiting for pushed inputs instead (and then almost nothing on outputs).
"""

import pytest

from repro.bench.experiments import table3_crt_breakdown
from repro.bench.report import format_table

from _helpers import write_result

_cache = {}


def _breakdown():
    if "bd" not in _cache:
        _cache["bd"] = table3_crt_breakdown(
            num_regions=4, shards_per_region=2, clients_per_region=10,
            duration_ms=9000.0, seed=1,
        )
    return _cache["bd"]


def test_table3_rows(benchmark):
    bd = benchmark.pedantic(_breakdown, rounds=1, iterations=1)
    rows = []
    for label in ("without_dependency", "with_dependency"):
        row = {"case": label}
        row.update({k: round(v, 1) for k, v in bd[label].items()})
        rows.append(row)
    text = format_table(rows, ["case", "local_prepare", "remote_prepare",
                               "wait_exec", "wait_input", "wait_output",
                               "total", "count"])
    print(text)
    write_result("table3_breakdown", text)
    assert bd["with_dependency"]["count"] > 0
    assert bd["without_dependency"]["count"] > 0


def test_table3_prepare_phases(benchmark):
    bd = benchmark.pedantic(_breakdown, rounds=1, iterations=1)
    for case in bd.values():
        # Remote prepare ~ one cross-region RTT; local prepare ~ one intra RTT.
        assert 90.0 < case["remote_prepare"] < 140.0
        assert case["local_prepare"] < 20.0


def test_table3_dependency_shifts_the_wait(benchmark):
    """The paper's signature pattern: w/o deps the RTT shows up as
    wait_output; with deps it shows up as wait_input instead."""
    bd = benchmark.pedantic(_breakdown, rounds=1, iterations=1)
    without = bd["without_dependency"]
    with_dep = bd["with_dependency"]
    assert without["wait_input"] < 10.0
    assert without["wait_output"] > 30.0
    assert with_dep["wait_input"] > 80.0
    assert with_dep["wait_output"] < 30.0
    # Totals comparable between the two cases (paper: 216 vs 218 ms).
    assert with_dep["total"] < 1.6 * without["total"]
