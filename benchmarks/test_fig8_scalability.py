"""Figure 8: scalability with the number of regions.

Paper shape: DAST/Janus/Tapir throughput scales near-linearly with regions
and their latency stays stable (committing a CRT involves only its
participating regions); SLOG's global ordering service becomes the
bottleneck — its relative throughput gain flattens/drops and CRT latency
grows as every CRT must be shipped to every region.
"""

import pytest

from repro.bench.experiments import fig8_region_scalability
from repro.bench.report import format_series
from repro.config import TimingConfig

from _helpers import write_result

REGIONS = (2, 4, 10)
_cache = {}


def _series():
    if "series" not in _cache:
        from repro.bench.harness import Trial, run_trial
        from repro.workloads.tpcc import TpccWorkload

        # Make per-message CPU visible so the global orderer's per-region
        # fan-out cost (regions x entries) bites at this scale.
        timing = TimingConfig(service_time=0.5)
        series = {}
        for system in ("dast", "janus", "tapir", "slog"):
            series[system] = []
            for regions in REGIONS:
                result = run_trial(Trial(
                    system, lambda t: TpccWorkload(t),
                    num_regions=regions, shards_per_region=1,
                    clients_per_region=10, duration_ms=5000.0, seed=1,
                    timing=timing,
                ))
                row = result.summary.as_row()
                row["regions"] = regions
                if system == "slog":
                    row["global_ordered"] = result.system.orderer.stats.get("global_ordered")
                    row["global_submitted"] = result.system.orderer.stats.get("global_submits")
                series[system].append(row)
        _cache["series"] = series
    return _cache["series"]


def test_fig8_run(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    text = format_series(series, ["regions", "throughput_tps", "irt_p50_ms",
                                  "crt_p50_ms", "crt_p99_ms"])
    print(text)
    write_result("fig8_scalability", text)
    assert all(len(rows) == len(REGIONS) for rows in series.values())


def test_fig8_dast_scales_nearly_linearly(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    tput = {row["regions"]: row["throughput_tps"] for row in series["dast"]}
    scale = len(REGIONS) and REGIONS[-1] / REGIONS[0]
    assert tput[REGIONS[-1]] > 0.6 * scale * tput[REGIONS[0]]


def test_fig8_dast_latency_stable_across_regions(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    irt = [row["irt_p50_ms"] for row in series["dast"]]
    crt = [row["crt_p50_ms"] for row in series["dast"]]
    assert max(irt) < 2.0 * min(irt)
    assert max(crt) < 2.0 * min(crt)


def test_fig8_slog_global_orderer_is_the_bottleneck(benchmark):
    """Every CRT flows through SLOG's single global orderer, whose
    dispatch work grows with (regions x entries); DAST has no centralized
    component — committing a CRT involves only its participating regions.

    At this simulation scale the orderer's queueing shows up as SLOG's CRT
    latency growing with the region count while DAST's stays flat, and as
    the orderer's total ordering load growing linearly with regions."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    slog_crt = {row["regions"]: row["crt_p50_ms"] for row in series["slog"]}
    dast_crt = {row["regions"]: row["crt_p50_ms"] for row in series["dast"]}
    slog_growth = slog_crt[REGIONS[-1]] / slog_crt[REGIONS[0]]
    dast_growth = dast_crt[REGIONS[-1]] / dast_crt[REGIONS[0]]
    assert dast_growth < 1.5  # DAST CRT latency flat across region counts
    assert slog_growth > dast_growth * 1.02
    # The centralized load itself grows ~linearly with regions.
    ordered = {row["regions"]: row["global_ordered"] for row in series["slog"]}
    assert ordered[REGIONS[-1]] > 2.0 * ordered[REGIONS[0]]


def test_fig8_slog_orderer_is_a_traffic_hotspot(benchmark):
    """R3's structural argument: DAST has no centralized component, so no
    host's load grows with the region count; SLOG's single orderer must
    sequence every CRT in the deployment, so its ordering load grows with
    regions (raw message receipts grow more slowly because batches merge
    under saturation — the queue is the symptom, the load is the cause)."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    submits = {row["regions"]: row["global_submitted"] for row in series["slog"]}
    assert submits[REGIONS[-1]] > 2.0 * submits[REGIONS[0]]
