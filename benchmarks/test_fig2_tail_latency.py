"""Figure 2: 99th-percentile IRT and CRT latency on TPC-C, all four systems.

Paper claims: DAST's IRT p99 is 87.9%-93.2% lower than Janus/Tapir/SLOG
(which all sit near or above one cross-region RTT); DAST's CRT p99 beats
the deferred-update (retrying) baseline by a wide margin.
"""

import pytest

from repro.bench.experiments import fig2_tail_latency
from repro.bench.report import format_table

from _helpers import write_result

COLUMNS = ["system", "irt_p99_ms", "crt_p99_ms", "irt_p50_ms", "crt_p50_ms",
           "throughput_tps", "abort_rate"]
_cache = {}


def _rows():
    if "rows" not in _cache:
        _cache["rows"] = fig2_tail_latency(
            num_regions=3, shards_per_region=2, clients_per_region=10,
            duration_ms=8000.0, seed=1,
        )
    return _cache["rows"]


def test_fig2_run(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = format_table(rows, COLUMNS)
    print(text)
    write_result("fig2_tail_latency", text)
    assert len(rows) == 4


def test_fig2_shape_irt_tail(benchmark):
    """R1: DAST's IRT p99 stays intra-region; every baseline's tail reaches
    toward the cross-region RTT (blocking or retries)."""
    p99 = benchmark.pedantic(
        lambda: {r["system"]: r["irt_p99_ms"] for r in _rows()},
        rounds=1, iterations=1,
    )
    assert p99["dast"] < 30.0  # a few intra-region RTTs
    for baseline in ("janus", "tapir", "slog"):
        assert p99[baseline] > 2 * p99["dast"], (baseline, p99)
    # Headline claim ballpark: far lower than the FCFS dependency-graph SMR.
    assert p99["dast"] < 0.3 * p99["janus"]


def test_fig2_shape_crt_tail(benchmark):
    """DAST's CRT p99 beats the retrying system (Tapir) by a wide margin
    and stays within a small factor of the best SMR baseline."""
    p99 = benchmark.pedantic(
        lambda: {r["system"]: r["crt_p99_ms"] for r in _rows()},
        rounds=1, iterations=1,
    )
    assert p99["dast"] < 0.6 * p99["tapir"]
    best_baseline = min(p99["janus"], p99["slog"])
    assert p99["dast"] < 2.5 * best_baseline


def test_fig2_no_conflict_aborts_for_smr_systems(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    for row in rows:
        if row["system"] in ("dast", "janus", "slog"):
            assert row["abort_rate"] < 0.03  # only TPC-C's ~1% user rollbacks
