"""Figure 6: TPC-C payment-only under a sweep of CRT ratios (1%..80%).

Paper shape: every system's throughput drops as the CRT ratio grows;
DAST's IRT latency (median and tail) stays flat regardless of the ratio
(R1), while Janus's and SLOG's IRT latency grows with it; DAST's CRT
latency grows with the ratio (clock freezes delaying subsequent CRTs,
Table 4's effect).
"""

import pytest

from repro.bench.experiments import fig6_crt_ratio_sweep
from repro.bench.report import format_series

from _helpers import write_result

RATIOS = (0.01, 0.2, 0.6)
_cache = {}


def _series():
    if "series" not in _cache:
        _cache["series"] = fig6_crt_ratio_sweep(
            ratios=RATIOS, num_regions=3, shards_per_region=1,
            clients_per_region=8, duration_ms=6000.0, seed=1,
        )
    return _cache["series"]


def test_fig6_run(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    text = format_series(series, ["crt_ratio", "throughput_tps", "irt_p50_ms",
                                  "irt_p99_ms", "crt_p50_ms", "crt_p99_ms",
                                  "abort_rate"])
    print(text)
    write_result("fig6_crt_ratio", text)
    assert all(len(rows) == len(RATIOS) for rows in series.values())


def test_fig6_throughput_drops_with_crt_ratio(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    for system in ("dast", "janus", "slog"):
        tps = [row["throughput_tps"] for row in series[system]]
        assert tps[-1] < tps[0], (system, tps)


def test_fig6_dast_irt_flat_across_ratios(benchmark):
    """R1: DAST's IRT tail is insensitive to the CRT ratio."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    tails = [row["irt_p99_ms"] for row in series["dast"]]
    assert max(tails) < 40.0
    assert max(tails) < 3.0 * min(tails)


def test_fig6_fcfs_irt_grows_with_ratio(benchmark):
    """Janus's IRT tail inflates as more CRTs arrive to block behind."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    janus = [row["irt_p99_ms"] for row in series["janus"]]
    dast = [row["irt_p99_ms"] for row in series["dast"]]
    assert janus[-1] > 3 * dast[-1]
    assert janus[-1] > janus[0]


def test_fig6_dast_crt_latency_grows_with_ratio(benchmark):
    """Table 4's effect: frozen clocks delay subsequent CRTs as the ratio
    rises."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    crt = [row["crt_p50_ms"] for row in series["dast"]]
    assert crt[-1] > crt[0]
