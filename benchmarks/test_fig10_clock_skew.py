"""Figure 10: DAST under cross-region clock skewness.

10a — a +200 ms step on the second region's manager clock (NTP off): IRT
latency stays stable; CRT latency spikes (inflated anticipations) and then
recovers as the calibration mechanism catches the other clocks up.

10b — constant 200 ms skew plus asymmetric one-way delay: CRT latency
increases as the asymmetry grows (the calibration assumes a symmetric
network); IRTs are unaffected.
"""

import pytest

from repro.bench.experiments import fig10a_clock_skew_timeline, fig10b_asymmetric_delay
from repro.bench.report import format_table

from _helpers import write_result

FRACTIONS = (0.5, 0.65)
_cache = {}


def _timeline():
    if "a" not in _cache:
        _cache["a"] = fig10a_clock_skew_timeline(
            skew_ms=200.0, inject_at_ms=4000.0, num_regions=2,
            shards_per_region=2, clients_per_region=8,
            duration_ms=12000.0, seed=1,
        )
    return _cache["a"]


def _asym_rows():
    if "b" not in _cache:
        _cache["b"] = fig10b_asymmetric_delay(
            forward_fractions=FRACTIONS, skew_ms=200.0, num_regions=2,
            shards_per_region=2, clients_per_region=8,
            duration_ms=6000.0, seed=1,
        )
    return _cache["b"]


def test_fig10a_run(benchmark):
    series = benchmark.pedantic(_timeline, rounds=1, iterations=1)
    text = format_table(series, ["t_ms", "throughput_tps", "irt_p50_ms",
                                 "irt_p99_ms", "crt_p50_ms", "crt_p99_ms"])
    print(text)
    write_result("fig10a_clock_skew", text)
    assert len(series) > 10


def test_fig10a_irt_stable_through_skew_injection(benchmark):
    series = benchmark.pedantic(_timeline, rounds=1, iterations=1)
    irts = [row["irt_p99_ms"] for row in series if row["irt_p99_ms"] > 0]
    assert max(irts) < 45.0


def test_fig10a_crt_spikes_then_recovers(benchmark):
    series = benchmark.pedantic(_timeline, rounds=1, iterations=1)

    def window(lo, hi):
        values = [row["crt_p99_ms"] for row in series
                  if lo <= row["t_ms"] < hi and row["crt_p99_ms"] > 0]
        return max(values) if values else 0.0

    before = window(1500.0, 4000.0)
    spike = window(4000.0, 7000.0)
    after = window(9000.0, 11500.0)
    assert spike > before + 80.0          # the injected 200ms skew shows up
    assert after < before + 120.0         # calibration recovered the bulk


def test_fig10b_run(benchmark):
    rows = benchmark.pedantic(_asym_rows, rounds=1, iterations=1)
    text = format_table(rows, ["forward_fraction", "throughput_tps",
                               "irt_p50_ms", "irt_p99_ms", "crt_p50_ms",
                               "crt_p99_ms"])
    print(text)
    write_result("fig10b_asymmetric_delay", text)
    assert len(rows) == len(FRACTIONS)


def test_fig10b_asymmetry_costs_crts_not_irts(benchmark):
    """Residual skew under asymmetric delay elevates CRT latency above the
    ~2.3-RTT symmetric/no-skew baseline; IRTs are untouched either way.
    (The paper's monotone-in-asymmetry trend is within noise at this
    simulation scale; the robust signal is the elevation itself.)"""
    rows = benchmark.pedantic(_asym_rows, rounds=1, iterations=1)
    for row in rows:
        assert row["crt_p50_ms"] > 260.0  # elevated vs ~230ms baseline
    irts = [r["irt_p99_ms"] for r in rows]
    assert max(irts) < 45.0
