"""Table 2: the TPC-C transaction mix and its IRT/CRT split.

Paper (Table 2, at 10 regions x 10 warehouses): new-order 43.98% total with
4.38% CRT; payment 44.08% with 6.57% CRT; order-status/delivery/stock-level
~4% each and 0% CRT.
"""

import pytest

from repro.bench.experiments import table2_transaction_mix
from repro.bench.report import format_table

from _helpers import write_result

_cache = {}


def _mix():
    if "mix" not in _cache:
        _cache["mix"] = table2_transaction_mix(
            num_regions=10, shards_per_region=2, samples=30000, seed=1,
        )
    return _cache["mix"]


def test_table2_rows(benchmark):
    mix = benchmark.pedantic(_mix, rounds=1, iterations=1)
    rows = [
        {"txn_type": t, **{k: round(v, 4) for k, v in v.items()}}
        for t, v in mix.items()
    ]
    text = format_table(rows, ["txn_type", "irt_ratio", "crt_ratio", "total_ratio"])
    print(text)
    write_result("table2_mix", text)
    assert abs(sum(r["total_ratio"] for r in rows) - 1.0) < 1e-6


def test_table2_type_shares(benchmark):
    mix = benchmark.pedantic(_mix, rounds=1, iterations=1)
    assert 0.40 < mix["new_order"]["total_ratio"] < 0.48
    assert 0.40 < mix["payment"]["total_ratio"] < 0.48
    for kind in ("order_status", "delivery", "stock_level"):
        assert 0.02 < mix[kind]["total_ratio"] < 0.06


def test_table2_crt_split(benchmark):
    """~10% of new-orders and ~14% of payments cross regions (with 19/20
    remote warehouses in another region at this scale); read-only types
    never do."""
    mix = benchmark.pedantic(_mix, rounds=1, iterations=1)
    no = mix["new_order"]
    pay = mix["payment"]
    assert 0.04 < no["crt_ratio"] / no["total_ratio"] < 0.16
    assert 0.10 < pay["crt_ratio"] / pay["total_ratio"] < 0.18
    for kind in ("order_status", "delivery", "stock_level"):
        assert mix[kind]["crt_ratio"] == 0.0
