#!/usr/bin/env python
"""Compare a fresh ``repro bench`` run against the committed trajectory.

CI runs the quick matrix and calls::

    python benchmarks/bench_compare.py BENCH_committed.json BENCH_fleet.json

Fresh rows are matched to committed rows by label — a fresh quick row
``tpcc/dast`` prefers the committed ``quick:tpcc/dast`` row (the full
matrix carries quick-labelled duplicates for exactly this purpose) and
falls back to the plain label.  Two gates:

* **Determinism** — virtual-time fields (throughput, p99s, message count)
  must be byte-equal to the committed row.  A mismatch means the committed
  ``BENCH_fleet.json`` is stale: regenerate it in the same PR that changed
  behaviour.
* **Wall clock** — the geometric-mean slowdown across matched rows must
  stay under ``--max-regression`` (default 0.25, i.e. 25%).  Per-row noise
  on shared runners is expected; the aggregate is the gate.

Set ``BENCH_COMPARE_SKIP=1`` (or apply the ``bench-skip`` PR label, which
CI maps to that variable) to skip both gates.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

VIRTUAL_FIELDS = ("throughput_tps", "irt_p99_ms", "crt_p99_ms", "msgs_total")


def load_rows(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    return {row["label"]: row for row in payload.get("rows", []) if "failure" not in row}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="committed BENCH_fleet.json (baseline)")
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("--max-regression", type=float,
                        default=float(os.environ.get("BENCH_MAX_REGRESSION", "0.25")),
                        help="max aggregate wall-clock slowdown (fraction)")
    parser.add_argument("--skip-virtual", action="store_true",
                        help="only gate wall clock, not virtual-field equality")
    args = parser.parse_args(argv)

    if os.environ.get("BENCH_COMPARE_SKIP") == "1":
        print("bench-compare: skipped (BENCH_COMPARE_SKIP=1)")
        return 0

    committed = load_rows(args.committed)
    fresh = load_rows(args.fresh)
    if not fresh:
        print("bench-compare: FAIL — no successful rows in fresh run")
        return 1

    drift, ratios, unmatched = [], [], []
    for label, row in sorted(fresh.items()):
        base = committed.get(f"quick:{label}") or committed.get(label)
        if base is None:
            unmatched.append(label)
            continue
        for field in VIRTUAL_FIELDS:
            if row.get(field) != base.get(field):
                drift.append(f"  {label}: {field} {base.get(field)!r} -> {row.get(field)!r}")
        base_wall, wall = base.get("wall_clock_s"), row.get("wall_clock_s")
        if base_wall and wall:
            ratios.append(wall / base_wall)
            print(f"bench-compare: {label}: {base_wall:.2f}s -> {wall:.2f}s "
                  f"({wall / base_wall:.2f}x)")

    for label in unmatched:
        print(f"bench-compare: note: no committed row for {label!r}")

    failed = False
    if drift and not args.skip_virtual:
        print("bench-compare: FAIL — virtual-time results drifted from the "
              "committed BENCH_fleet.json (regenerate it in this PR):")
        print("\n".join(drift))
        failed = True
    if ratios:
        agg = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"bench-compare: aggregate slowdown {agg:.3f}x over "
              f"{len(ratios)} rows (limit {1 + args.max_regression:.2f}x)")
        if agg > 1 + args.max_regression:
            print("bench-compare: FAIL — wall-clock regression exceeds limit")
            failed = True
    else:
        print("bench-compare: FAIL — no rows matched the committed baseline")
        failed = True
    if not failed:
        print("bench-compare: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
