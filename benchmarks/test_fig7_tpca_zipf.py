"""Figure 7: TPC-A under a zipf conflict-rate sweep (theta 0.5 -> ~1.0).

Paper shape: DAST is insensitive to the conflict rate (it orders all
transactions by timestamps regardless of conflicts); Tapir's latency and
abort rate grow with contention; all systems' IRT latency is stable except
Tapir's (TPC-A has no cross-region value dependencies).
"""

import pytest

from repro.bench.experiments import fig7_conflict_sweep
from repro.bench.report import format_series

from _helpers import write_result

THETAS = (0.5, 0.8, 0.99)
_cache = {}


def _series():
    if "series" not in _cache:
        _cache["series"] = fig7_conflict_sweep(
            thetas=THETAS, num_regions=2, shards_per_region=1,
            clients_per_region=8, duration_ms=6000.0, seed=1,
        )
    return _cache["series"]


def test_fig7_run(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    text = format_series(series, ["theta", "throughput_tps", "irt_p50_ms",
                                  "irt_p99_ms", "crt_p50_ms", "crt_p99_ms",
                                  "abort_rate"])
    print(text)
    write_result("fig7_tpca_zipf", text)
    assert all(len(rows) == len(THETAS) for rows in series.values())


def test_fig7_dast_insensitive_to_conflicts(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    tput = [row["throughput_tps"] for row in series["dast"]]
    irt = [row["irt_p99_ms"] for row in series["dast"]]
    assert min(tput) > 0.7 * max(tput)
    assert max(irt) < 2.0 * min(irt)
    assert all(row["abort_rate"] == 0.0 for row in series["dast"])


def test_fig7_tapir_degrades_with_conflicts(benchmark):
    """Tapir retries under contention: completed-transaction latency
    includes those retries, so its tail sits far above DAST's at every
    theta and its retry rate is nonzero where DAST's is zero by design."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    tapir = series["tapir"]
    dast = series["dast"]
    assert tapir[-1]["mean_retries"] > 0.0
    assert all(t["irt_p99_ms"] > 3 * d["irt_p99_ms"]
               for t, d in zip(tapir, dast))


def test_fig7_smr_systems_never_abort(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    for system in ("dast", "janus", "slog"):
        assert all(row["abort_rate"] == 0.0 for row in series[system]), system


def test_fig7_irt_stable_without_value_deps(benchmark):
    """TPC-A has only independent transactions, so even the FCFS systems
    keep flat IRT latency across the sweep (the paper's observation)."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    for system in ("dast", "slog"):
        medians = [row["irt_p50_ms"] for row in series[system]]
        assert max(medians) < 2.0 * min(medians), (system, medians)
