"""Figure 5: TPC-C throughput and latency versus the number of clients.

Paper shape: throughput of DAST/Janus/SLOG climbs until CPU saturation,
Tapir's drops under contention from aborts/retries; DAST's IRT latency
stays flat while Tapir's explodes; CRT CDFs (5d) put DAST's median near
~2.5 RTT with a shorter tail than Janus's ~4 RTT.
"""

import pytest

from repro.bench.experiments import fig5_client_sweep
from repro.bench.report import format_series
from repro.config import TimingConfig

from _helpers import write_result

CLIENTS = (2, 8, 20)
_cache = {}


def _series():
    if "series" not in _cache:
        import repro.bench.experiments as exp
        from repro.bench.harness import Trial, run_trial
        from repro.workloads.tpcc import TpccWorkload

        # Heavier per-message CPU cost so saturation appears at this scale.
        timing = TimingConfig(service_time=0.25)
        series = {}
        for system in ("dast", "janus", "tapir", "slog"):
            series[system] = []
            for clients in CLIENTS:
                result = run_trial(Trial(
                    system, lambda t: TpccWorkload(t),
                    num_regions=2, shards_per_region=2,
                    clients_per_region=clients, duration_ms=6000.0,
                    seed=1, timing=timing,
                ))
                row = result.summary.as_row()
                row["clients_per_region"] = clients
                row["crt_cdf"] = result.recorder.cdf(crt=True, points=12)
                series[system].append(row)
        _cache["series"] = series
    return _cache["series"]


def test_fig5_run(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    text = format_series(series, [
        "clients_per_region", "throughput_tps", "irt_p50_ms", "irt_p99_ms",
        "crt_p50_ms", "crt_p99_ms", "abort_rate",
    ])
    print(text)
    cdf_lines = []
    for system, rows in sorted(series.items()):
        peak = rows[-1]
        cdf_lines.append(f"== {system} CRT CDF at {peak['clients_per_region']} clients ==")
        for x, y in peak["crt_cdf"]:
            cdf_lines.append(f"  {x:9.1f} ms  {y:5.2f}")
    write_result("fig5_tpcc_clients", text + "\n\n" + "\n".join(cdf_lines))
    assert set(series) == {"dast", "janus", "tapir", "slog"}


def test_fig5a_throughput_climbs_for_smr_systems(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    for system in ("dast", "janus", "slog"):
        tps = [row["throughput_tps"] for row in series[system]]
        assert tps[-1] > tps[0] * 1.5, (system, tps)


def test_fig5b_dast_irt_median_flat_tapir_grows(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    dast = [row["irt_p50_ms"] for row in series["dast"]]
    assert max(dast) < 2.5 * min(dast)
    # Tapir's completed-txn latency includes retries under contention.
    tapir_tail = [row["irt_p99_ms"] for row in series["tapir"]]
    assert tapir_tail[-1] > 3 * tapir_tail[0]


def test_fig5d_crt_cdf_medians(benchmark):
    """At the highest load: DAST's CRT median ~2-3 RTT; Janus ~2 RTT with a
    longer tail shape than its median (fast path vs blocked dependents)."""
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    dast = series["dast"][-1]
    janus = series["janus"][-1]
    assert 150.0 < dast["crt_p50_ms"] < 450.0
    assert 150.0 < janus["crt_p50_ms"] < 450.0
    assert janus["crt_p99_ms"] > janus["crt_p50_ms"]
